// Matrix-free application of the logit transition kernel (DESIGN.md §9).
//
// The asynchronous kernel (paper Eq. (3)) has a columnar identity that
// makes x |-> xP pure per-output-state work: the update distribution
// sigma_p(. | i) of a revising player depends only on the opponent
// sub-profile, so every in-neighbour i of j that differs in player p has
// sigma_p(j_p | i) = sigma_p(j_p | j), and
//
//   (xP)[j] = (1/n) * sum_p sigma_p(j_p | j) *
//                     sum_{s in S_p} x[ j with player p playing s ].
//
// One batched `utility_rows` oracle call per *output* state — the same
// per-state cost as one TransitionBuilder row — sharded over the
// ThreadPool with no write races and no materialized matrix. This is what
// moves the spectral/mixing state-space ceiling from "dense matrix fits"
// (~2^11) to "a handful of O(|S|) vectors fit" (2^20+).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/transition_builder.hpp"
#include "games/game.hpp"
#include "linalg/linear_operator.hpp"
#include "parallel/thread_pool.hpp"

namespace logitdyn {

/// One step of the asynchronous or synchronous logit kernel as a
/// LinearOperator, evaluated from the utility oracle — P is never stored.
/// Holds a reference: the game must outlive the operator.
///
/// Cost per apply: asynchronous O(|S| * (oracle + sum_i |S_i|));
/// synchronous O(|S|^2 * n) (its rows are fully dense — the operator
/// still wins on memory, not on time). Output is bit-identical at every
/// pool size: each output element is reduced in a fixed order by exactly
/// one task (asynchronous), or accumulated in ascending source order with
/// disjoint per-task target ranges (synchronous).
class LogitOperator final : public LinearOperator {
 public:
  /// `pool` defaults to ThreadPool::global().
  LogitOperator(const Game& game, double beta, UpdateKind kind,
                ThreadPool* pool = nullptr);

  const Game& game() const { return game_; }
  double beta() const { return beta_; }
  void set_beta(double beta);
  UpdateKind kind() const { return kind_; }

  size_t size() const override;
  void apply(std::span<const double> x, std::span<double> y) const override;
  /// Batched apply: the oracle row of each state is evaluated once and
  /// shared across all `count` vectors (the multi-start TV evolution
  /// path), so the oracle cost is paid once regardless of batch width.
  void apply_many(std::span<const double> xs, std::span<double> ys,
                  size_t count) const override;

  /// Row `idx` of P as (column, value) pairs, columns ascending — the
  /// matrix-free analogue of one TransitionBuilder CSR row (same shared
  /// assembly, so the two can never disagree). The building block for a
  /// fully matrix-free sweep cut; today's best_sweep_cut_lanczos still
  /// walks a materialized CSR. Asynchronous kernel only (synchronous
  /// rows are fully dense; build them via TransitionBuilder if needed).
  void row(size_t idx, std::vector<uint32_t>& cols,
           std::vector<double>& vals) const;

 private:
  void apply_async(std::span<const double> xs, std::span<double> ys,
                   size_t count) const;
  void apply_sync(std::span<const double> xs, std::span<double> ys,
                  size_t count) const;

  const Game& game_;
  double beta_;
  UpdateKind kind_;
  ThreadPool* pool_;
};

}  // namespace logitdyn
