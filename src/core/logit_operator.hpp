// Matrix-free application of the logit transition kernel (DESIGN.md §9,
// fast-apply engine §11).
//
// The asynchronous kernel (paper Eq. (3)) has a columnar identity that
// makes x |-> xP pure per-output-state work: the update distribution
// sigma_p(. | i) of a revising player depends only on the opponent
// sub-profile, so every in-neighbour i of j that differs in player p has
// sigma_p(j_p | i) = sigma_p(j_p | j), and
//
//   (xP)[j] = (1/n) * sum_p sigma_p(j_p | j) *
//                     sum_{s in S_p} x[ j with player p playing s ].
//
// One batched `utility_rows` oracle call per *output* state — the same
// per-state cost as one TransitionBuilder row — sharded over the
// ThreadPool with no write races and no materialized matrix. This is what
// moves the spectral/mixing state-space ceiling from "dense matrix fits"
// (~2^11) to "a handful of O(|S|) vectors fit" (2^22).
//
// The fast-apply engine evaluates the kernel in structure-of-arrays
// blocks of output states: the oracle rows of a whole block are gathered
// into one contiguous buffer, the per-row softmax becomes a segmented
// max-subtract plus ONE flat branch-free fast_exp pass over the block
// (the loop that auto-vectorizes), and neighbour indices come from the
// mixed-radix stride identity x[j : p -> s] = j + (s - j_p)*stride(p)
// instead of a per-neighbour re-encode. The pre-engine scalar loops are
// retained behind ApplyMode::kScalarReference as the certified
// cross-check (agreement gated in CI through BENCH_apply.json).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/transition_builder.hpp"
#include "games/game.hpp"
#include "linalg/linear_operator.hpp"
#include "parallel/thread_pool.hpp"

namespace logitdyn {

/// Which apply implementation a LogitOperator runs (DESIGN.md §11).
enum class ApplyMode {
  kVectorized,       ///< SoA-blocked fast_exp kernel (the default)
  kScalarReference,  ///< the retained pre-engine scalar loops (std::exp)
};

/// One step of the asynchronous or synchronous logit kernel as a
/// LinearOperator, evaluated from the utility oracle — P is never stored.
/// Holds a reference: the game must outlive the operator.
///
/// Cost per apply: asynchronous O(|S| * (oracle + sum_i |S_i|));
/// synchronous O(|S|^2 * n) (its rows are fully dense — the operator
/// still wins on memory, not on time; route big synchronous workloads
/// through ParallelLogitChain::csr_transition(drop_tol) + CsrOperator
/// instead, with the quantified defect bound of DESIGN.md §11). Output is
/// bit-identical at every pool size AND every batch size: each output
/// element is reduced in a fixed order by exactly one task
/// (asynchronous), or accumulated in ascending source order with disjoint
/// per-task target ranges (synchronous), and per-vector work never
/// depends on how many vectors ride in the batch.
///
/// NOT thread-safe per instance: applies reuse per-shard scratch buffers
/// (sized on first use, so steady-state applies never allocate — the
/// allocation-audit tests pin this). Run concurrent applies on separate
/// operators; they share the game read-only.
class LogitOperator final : public LinearOperator {
 public:
  /// `pool` defaults to ThreadPool::global().
  LogitOperator(const Game& game, double beta, UpdateKind kind,
                ThreadPool* pool = nullptr,
                ApplyMode mode = ApplyMode::kVectorized);

  const Game& game() const { return game_; }
  double beta() const { return beta_; }
  void set_beta(double beta);
  UpdateKind kind() const { return kind_; }
  ApplyMode mode() const { return mode_; }

  size_t size() const override;
  void apply(std::span<const double> x, std::span<double> y) const override;
  /// Batched apply: the oracle row of each state is evaluated once and
  /// shared across all `count` vectors (the multi-start TV evolution
  /// path), so the oracle cost is paid once regardless of batch width.
  void apply_many(std::span<const double> xs, std::span<double> ys,
                  size_t count) const override;

  /// Row `idx` of P as (column, value) pairs, columns ascending — the
  /// matrix-free analogue of one TransitionBuilder CSR row (same shared
  /// assembly, so the two can never disagree). The building block of the
  /// matrix-free sweep cut (best_sweep_cut_operator). Asynchronous kernel
  /// only (synchronous rows are fully dense; build them via
  /// TransitionBuilder if needed).
  void row(size_t idx, std::vector<uint32_t>& cols,
           std::vector<double>& vals) const;

 private:
  /// Per-shard reusable buffers of the vectorized asynchronous kernel;
  /// one entry per shard, sized on first apply and kept across calls.
  struct ShardScratch {
    Profile x;
    std::vector<double> rows;    ///< block's oracle rows / exp weights
    std::vector<double> shift;   ///< per-entry softmax max, expanded flat
    std::vector<double> acc;     ///< per-vector accumulators
    std::vector<double> nb;      ///< per-vector neighbour sums
    std::vector<Strategy> strat; ///< decoded strategies of the block
  };

  void apply_async(std::span<const double> xs, std::span<double> ys,
                   size_t count) const;
  void apply_async_scalar(std::span<const double> xs, std::span<double> ys,
                          size_t count) const;
  void apply_sync(std::span<const double> xs, std::span<double> ys,
                  size_t count) const;

  const Game& game_;
  double beta_;
  UpdateKind kind_;
  ThreadPool* pool_;
  ApplyMode mode_;
  mutable std::vector<ShardScratch> scratch_;  // async kernel, per shard
  // Interleaved (state-major) views of the batch for count > 1: the
  // neighbour gather of state j reads the count values of each neighbour
  // as one contiguous run instead of count loads scattered size() apart
  // — the cache-blocking that makes wide batches actually pay
  // (DESIGN.md §11). Sized on first batched apply, reused afterwards.
  mutable std::vector<double> xq_, yq_;
  // Synchronous-kernel scratch (sequential over sources).
  mutable Profile sync_x_;
  mutable std::vector<double> sync_rows_, sync_weight_;
  // row() scratch — the sweep cut calls row() once per state.
  mutable Profile row_x_;
  mutable std::vector<double> row_rows_;
  mutable std::vector<std::pair<uint32_t, double>> row_entries_;
};

}  // namespace logitdyn
