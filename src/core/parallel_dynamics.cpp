#include "core/parallel_dynamics.hpp"

#include "core/logit.hpp"
#include "core/transition_builder.hpp"
#include "linalg/lu_solver.hpp"
#include "parallel/thread_pool.hpp"
#include "support/error.hpp"

namespace logitdyn {

ParallelLogitChain::ParallelLogitChain(const Game& game, double beta)
    : game_(game), beta_(beta) {
  LD_CHECK(beta >= 0.0, "ParallelLogitChain: beta must be non-negative");
}

void ParallelLogitChain::set_beta(double beta) {
  LD_CHECK(beta >= 0.0, "ParallelLogitChain: beta must be non-negative");
  beta_ = beta;
}

DenseMatrix ParallelLogitChain::dense_transition() const {
  return dense_transition(ThreadPool::global());
}

DenseMatrix ParallelLogitChain::dense_transition(ThreadPool& pool) const {
  return TransitionBuilder(game_, beta_, UpdateKind::kSynchronous).dense(pool);
}

CsrMatrix ParallelLogitChain::csr_transition(double drop_tol) const {
  return csr_transition(ThreadPool::global(), drop_tol);
}

CsrMatrix ParallelLogitChain::csr_transition(ThreadPool& pool,
                                             double drop_tol) const {
  return TransitionBuilder(game_, beta_, UpdateKind::kSynchronous)
      .csr(pool, drop_tol);
}

std::vector<double> ParallelLogitChain::stationary() const {
  return stationary_direct(dense_transition());
}

void ParallelLogitChain::step(Profile& x, Rng& rng,
                              std::span<double> scratch) const {
  const ProfileSpace& sp = game_.space();
  const int n = sp.num_players();
  LD_CHECK(scratch.size() >= sp.total_strategies(),
           "ParallelLogitChain::step: scratch too small");
  std::span<double> rows(scratch.data(), sp.total_strategies());
  // All draws are against the old profile x, so one batched update-rule
  // call serves every player's simultaneous update; after it, the draws
  // depend only on `rows`, so coordinates can be overwritten in place.
  logit_update_rows(game_, beta_, x, rows);
  size_t offset = 0;
  for (int i = 0; i < n; ++i) {
    const size_t m = size_t(sp.num_strategies(i));
    x[size_t(i)] = Strategy(rng.sample_discrete(
        std::span<const double>(rows.data() + offset, m)));
    offset += m;
  }
}

}  // namespace logitdyn
