#include "core/parallel_dynamics.hpp"

#include "core/logit.hpp"
#include "linalg/lu_solver.hpp"
#include "support/error.hpp"

namespace logitdyn {

ParallelLogitChain::ParallelLogitChain(const Game& game, double beta)
    : game_(game), beta_(beta) {
  LD_CHECK(beta >= 0.0, "ParallelLogitChain: beta must be non-negative");
}

DenseMatrix ParallelLogitChain::dense_transition() const {
  const ProfileSpace& sp = game_.space();
  const size_t total = sp.num_profiles();
  const int n = sp.num_players();
  // Precompute per-(state, player) update distributions, then take the
  // product across players for each target profile.
  std::vector<std::vector<double>> sigma(static_cast<size_t>(n));
  DenseMatrix p(total, total);
  Profile x;
  for (size_t from = 0; from < total; ++from) {
    sp.decode_into(from, x);
    for (int i = 0; i < n; ++i) {
      sigma[size_t(i)].resize(size_t(sp.num_strategies(i)));
      logit_update_distribution(game_, beta_, i, x, sigma[size_t(i)]);
    }
    for (size_t to = 0; to < total; ++to) {
      double prob = 1.0;
      for (int i = 0; i < n; ++i) {
        prob *= sigma[size_t(i)][size_t(sp.strategy_of(to, i))];
        if (prob == 0.0) break;
      }
      p(from, to) = prob;
    }
  }
  return p;
}

std::vector<double> ParallelLogitChain::stationary() const {
  return stationary_direct(dense_transition());
}

void ParallelLogitChain::step(Profile& x, Rng& rng) const {
  const ProfileSpace& sp = game_.space();
  const int n = sp.num_players();
  Profile next = x;
  std::vector<double> sigma;
  for (int i = 0; i < n; ++i) {
    sigma.resize(size_t(sp.num_strategies(i)));
    // All draws are against the old profile x.
    logit_update_distribution(game_, beta_, i, x, sigma);
    next[size_t(i)] = Strategy(rng.sample_discrete(sigma));
  }
  x = std::move(next);
}

}  // namespace logitdyn
