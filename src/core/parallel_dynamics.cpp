#include "core/parallel_dynamics.hpp"

#include "core/logit.hpp"
#include "linalg/lu_solver.hpp"
#include "support/error.hpp"

namespace logitdyn {

ParallelLogitChain::ParallelLogitChain(const Game& game, double beta)
    : game_(game), beta_(beta) {
  LD_CHECK(beta >= 0.0, "ParallelLogitChain: beta must be non-negative");
}

DenseMatrix ParallelLogitChain::dense_transition() const {
  const ProfileSpace& sp = game_.space();
  const size_t total = sp.num_profiles();
  const int n = sp.num_players();
  // One batched oracle call per from-state yields every player's update
  // distribution; the transition row is their product per target profile.
  std::vector<double> rows(sp.total_strategies());
  std::vector<size_t> offset(static_cast<size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    offset[size_t(i) + 1] = offset[size_t(i)] + size_t(sp.num_strategies(i));
  }
  DenseMatrix p(total, total);
  Profile x;
  for (size_t from = 0; from < total; ++from) {
    sp.decode_into(from, x);
    logit_update_rows(game_, beta_, x, rows);
    for (size_t to = 0; to < total; ++to) {
      double prob = 1.0;
      for (int i = 0; i < n; ++i) {
        prob *= rows[offset[size_t(i)] + size_t(sp.strategy_of(to, i))];
        if (prob == 0.0) break;
      }
      p(from, to) = prob;
    }
  }
  return p;
}

std::vector<double> ParallelLogitChain::stationary() const {
  return stationary_direct(dense_transition());
}

void ParallelLogitChain::step(Profile& x, Rng& rng) const {
  const ProfileSpace& sp = game_.space();
  const int n = sp.num_players();
  Profile next = x;
  // All draws are against the old profile x, so one batched update-rule
  // call serves every player's simultaneous update.
  std::vector<double> rows(sp.total_strategies());
  logit_update_rows(game_, beta_, x, rows);
  size_t offset = 0;
  for (int i = 0; i < n; ++i) {
    const size_t m = size_t(sp.num_strategies(i));
    next[size_t(i)] = Strategy(rng.sample_discrete(
        std::span<const double>(rows.data() + offset, m)));
    offset += m;
  }
  x = std::move(next);
}

}  // namespace logitdyn
