#include "core/transition_builder.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "core/logit.hpp"
#include "support/error.hpp"
#include "support/run_control.hpp"

namespace logitdyn {

namespace {

/// Cancellation stride inside a build shard: rows between control polls.
/// Row enumeration is one batched oracle call plus O(total_strategies)
/// arithmetic, so a few hundred rows amortize the poll to noise.
constexpr size_t kBuildPollStride = 512;

size_t shard_count(ThreadPool& pool, size_t total) {
  return std::max<size_t>(1, std::min(pool.num_threads(), total));
}

/// Contiguous [lo, hi) shards, one per pool worker, dispatched through
/// parallel_for over shard indices. When already running on one of the
/// pool's own workers (e.g. a batch-replica callback building a matrix),
/// blocking on sub-shards could deadlock — every worker waiting, none
/// free — so the build runs inline instead; parallel_for's small-range
/// fallback likewise keeps one-worker pools inline.
void run_sharded(ThreadPool& pool, size_t total,
                 const std::function<void(size_t, size_t, size_t)>& shard_fn,
                 size_t num_shards) {
  if (total == 0) return;
  if (pool.on_worker_thread()) {
    shard_fn(0, 0, total);
    return;
  }
  const size_t block = (total + num_shards - 1) / num_shards;
  parallel_for(pool, 0, num_shards, [&](size_t shard) {
    const size_t lo = shard * block;
    const size_t hi = std::min(total, lo + block);
    if (lo < hi) shard_fn(shard, lo, hi);
  });
}

}  // namespace

void async_row_entries(const ProfileSpace& sp, size_t idx, const Profile& x,
                       std::span<const double> rows,
                       std::vector<std::pair<uint32_t, double>>& entries) {
  // Off-diagonal columns with_strategy(idx, i, s) are pairwise distinct
  // across (i, s != x_i); only the diagonal merges (every player's
  // stay-put mass), so accumulate it separately and sort the per-row
  // entries — a tiny local sort instead of a global one.
  const int n = sp.num_players();
  entries.clear();
  double diag = 0.0;
  for (int i = 0; i < n; ++i) {
    const int32_t m = sp.num_strategies(i);
    const Strategy xi = x[size_t(i)];
    for (Strategy s = 0; s < m; ++s) {
      const double v = rows[sp.strategy_offset(i) + size_t(s)] / double(n);
      if (s == xi) {
        diag += v;
      } else {
        entries.emplace_back(uint32_t(sp.with_strategy(idx, i, s)), v);
      }
    }
  }
  entries.emplace_back(uint32_t(idx), diag);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

TransitionBuilder::TransitionBuilder(const Game& game, double beta,
                                     UpdateKind kind)
    : game_(game), beta_(beta), kind_(kind) {
  LD_CHECK(beta >= 0.0, "TransitionBuilder: beta must be non-negative");
}

void TransitionBuilder::build_dense_rows(size_t lo, size_t hi,
                                         DenseMatrix& p) const {
  const ProfileSpace& sp = game_.space();
  const size_t total = sp.num_profiles();
  const int n = sp.num_players();
  Profile x;
  std::vector<double> rows(sp.total_strategies());
  for (size_t idx = lo; idx < hi; ++idx) {
    if (control_ != nullptr && (idx - lo) % kBuildPollStride == 0) {
      control_->checkpoint("build", std::min(kBuildPollStride, hi - idx));
    }
    sp.decode_into(idx, x);
    // One batched update-rule call per state: every player's
    // sigma_i(. | x) in a single oracle pass (Eq. (2) per row).
    logit_update_rows(game_, beta_, x, rows);
    if (kind_ == UpdateKind::kAsynchronous) {
      for (int i = 0; i < n; ++i) {
        const int32_t m = sp.num_strategies(i);
        for (Strategy s = 0; s < m; ++s) {
          // Eq. (3): the diagonal accumulates every player's probability
          // of re-picking her current strategy.
          p(idx, sp.with_strategy(idx, i, s)) +=
              rows[sp.strategy_offset(i) + size_t(s)] / double(n);
        }
      }
    } else {
      for (size_t to = 0; to < total; ++to) {
        double prob = 1.0;
        for (int i = 0; i < n; ++i) {
          prob *= rows[sp.strategy_offset(i) + size_t(sp.strategy_of(to, i))];
          if (prob == 0.0) break;
        }
        p(idx, to) = prob;
      }
    }
  }
}

void TransitionBuilder::build_csr_rows(size_t lo, size_t hi, double drop_tol,
                                       CsrShard& out) const {
  const ProfileSpace& sp = game_.space();
  const size_t total = sp.num_profiles();
  const int n = sp.num_players();
  Profile x;
  std::vector<double> rows(sp.total_strategies());
  out.row_nnz.reserve(hi - lo);
  if (kind_ == UpdateKind::kAsynchronous) {
    out.cols.reserve((hi - lo) * sp.total_strategies());
    out.vals.reserve((hi - lo) * sp.total_strategies());
  } else if (drop_tol <= 0.0) {
    // Exact synchronous rows are fully dense: the shard size is known.
    out.cols.reserve((hi - lo) * total);
    out.vals.reserve((hi - lo) * total);
  }
  std::vector<std::pair<uint32_t, double>> entries;
  entries.reserve(sp.total_strategies() + 1);
  for (size_t idx = lo; idx < hi; ++idx) {
    if (control_ != nullptr && (idx - lo) % kBuildPollStride == 0) {
      control_->checkpoint("build", std::min(kBuildPollStride, hi - idx));
    }
    sp.decode_into(idx, x);
    logit_update_rows(game_, beta_, x, rows);
    size_t nnz = 0;
    if (kind_ == UpdateKind::kAsynchronous) {
      async_row_entries(sp, idx, x, rows, entries);
      for (const auto& [col, val] : entries) {
        if (std::abs(val) <= drop_tol) continue;
        out.cols.push_back(col);
        out.vals.push_back(val);
        ++nnz;
      }
    } else {
      // Synchronous rows enumerate targets in ascending order — already
      // column-sorted, duplicate-free by construction.
      for (size_t to = 0; to < total; ++to) {
        double prob = 1.0;
        for (int i = 0; i < n; ++i) {
          prob *= rows[sp.strategy_offset(i) + size_t(sp.strategy_of(to, i))];
          if (prob == 0.0) break;
        }
        if (std::abs(prob) <= drop_tol) continue;
        out.cols.push_back(uint32_t(to));
        out.vals.push_back(prob);
        ++nnz;
      }
    }
    out.row_nnz.push_back(nnz);
  }
}

DenseMatrix TransitionBuilder::dense() const {
  return dense(ThreadPool::global());
}

DenseMatrix TransitionBuilder::dense(ThreadPool& pool) const {
  const size_t total = game_.space().num_profiles();
  DenseMatrix p(total, total);
  // Rows are disjoint, so every shard writes directly into the shared
  // matrix — assembly is the build itself.
  run_sharded(
      pool, total,
      [this, &p](size_t /*shard*/, size_t lo, size_t hi) {
        build_dense_rows(lo, hi, p);
      },
      shard_count(pool, total));
  return p;
}

CsrMatrix TransitionBuilder::csr(double drop_tol) const {
  return csr(ThreadPool::global(), drop_tol);
}

CsrMatrix TransitionBuilder::csr(ThreadPool& pool, double drop_tol) const {
  const size_t total = game_.space().num_profiles();
  LD_CHECK(total <= size_t(UINT32_MAX), "csr: state space exceeds 2^32");
  const size_t shards = shard_count(pool, total);
  std::vector<CsrShard> outputs(shards);
  run_sharded(
      pool, total,
      [this, drop_tol, &outputs](size_t shard, size_t lo, size_t hi) {
        build_csr_rows(lo, hi, drop_tol, outputs[shard]);
      },
      shards);
  // Lock-free assembly: shards cover contiguous row ranges in order, so
  // the final arrays are their concatenation; offsets come from one
  // prefix-sum pass over the per-row counts.
  size_t nnz = 0;
  for (const CsrShard& s : outputs) nnz += s.vals.size();
  std::vector<size_t> row_offsets;
  row_offsets.reserve(total + 1);
  row_offsets.push_back(0);
  std::vector<uint32_t> cols;
  cols.reserve(nnz);
  std::vector<double> vals;
  vals.reserve(nnz);
  for (const CsrShard& s : outputs) {
    for (size_t k : s.row_nnz) row_offsets.push_back(row_offsets.back() + k);
    cols.insert(cols.end(), s.cols.begin(), s.cols.end());
    vals.insert(vals.end(), s.vals.begin(), s.vals.end());
  }
  return CsrMatrix::from_parts(total, total, std::move(row_offsets),
                               std::move(cols), std::move(vals));
}

}  // namespace logitdyn
