// The logit update rule (paper Eq. (2)):
//   sigma_i(y | x) = exp(beta * u_i(y, x_{-i})) / T_i(x).
//
// Computed with a stable softmax (max-subtracted), so beta in the hundreds
// — deep in the paper's "large beta" regime — neither overflows nor
// denormalizes.
#pragma once

#include <span>
#include <vector>

#include "games/game.hpp"

namespace logitdyn {

/// Update distribution for `player` at profile `x`: fills `out[s]` =
/// sigma_player(s | x) for s in [0, |S_player|). `x` is used as scratch
/// (its `player` entry is modified and restored before returning).
void logit_update_distribution(const Game& game, double beta, int player,
                               Profile& x, std::span<double> out);

/// Allocating convenience wrapper.
std::vector<double> logit_update_distribution(const Game& game, double beta,
                                              int player, const Profile& x);

}  // namespace logitdyn
