// The logit update rule (paper Eq. (2)):
//   sigma_i(y | x) = exp(beta * u_i(y, x_{-i})) / T_i(x).
//
// Computed with a stable softmax (max-subtracted), so beta in the hundreds
// — deep in the paper's "large beta" regime — neither overflows nor
// denormalizes. Since the fast-apply engine (DESIGN.md §11) the softmax
// inner loop runs on the branch-free `fast_exp`; the pre-engine std::exp
// path is retained verbatim as `logit_update_rows_scalar`, the certified
// scalar cross-check every vectorized kernel is tested against.
#pragma once

#include <span>
#include <vector>

#include "games/game.hpp"

namespace logitdyn {

/// Update distribution for `player` at profile `x`: fills `out[s]` =
/// sigma_player(s | x) for s in [0, |S_player|). `x` is used as scratch
/// (its `player` entry is modified and restored before returning).
void logit_update_distribution(const Game& game, double beta, int player,
                               Profile& x, std::span<double> out);

/// Allocating convenience wrapper.
std::vector<double> logit_update_distribution(const Game& game, double beta,
                                              int player, const Profile& x);

/// Batched update rule: fills `flat` (the concatenated per-player layout
/// of Game::utility_rows, length space().total_strategies()) with
/// sigma_i(. | x) for EVERY player — one batched oracle query followed by
/// a per-player stable softmax. The single place the transition builders
/// and the synchronous dynamics get their update rows from, so the update
/// rule itself is defined here and in the single-row overload only.
void logit_update_rows(const Game& game, double beta, Profile& x,
                       std::span<double> flat);

/// The pre-fast-apply batched update rule (std::exp softmax), retained as
/// the certified scalar reference: the LogitOperator's scalar-reference
/// mode and the vectorized-vs-scalar cross-check tests run on it. Agrees
/// with `logit_update_rows` to ~1 ulp per weight, never bit-for-bit.
void logit_update_rows_scalar(const Game& game, double beta, Profile& x,
                              std::span<double> flat);

}  // namespace logitdyn
