// Exact lumping (projection) of logit chains.
//
// The permutation-symmetric games of the paper — the clique coordination
// game (Sect. 5.2), the plateau family (Thm 3.5) and the all-or-nothing
// dominant game (Thm 4.3) — are *strongly lumpable* with respect to the
// Hamming-weight partition: the projected process is itself a Markov
// chain, a birth-death chain on {0, ..., n}. This turns an exponential
// 2^n-state analysis into an (n+1)-state one, which is how the large-n
// experiments in bench/ compute exact mixing quantities.
//
// Projection facts used by the experiments (and verified in tests):
//  * the lumped stationary law is the push-forward of the Gibbs measure,
//    pi_lump(k) ∝ C(n,k) e^{-beta*phi(k)};
//  * TV distances can only shrink under projection, so lumped mixing
//    times lower-bound the full chain's; at small n the tests check the
//    two coincide for symmetric starts.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "games/game.hpp"
#include "linalg/dense_matrix.hpp"

namespace logitdyn {

/// A birth-death chain on {0, ..., n}: up[k] = P(k -> k+1),
/// down[k] = P(k -> k-1), lazily completed by self-loops.
class BirthDeathChain {
 public:
  /// `up` and `down` must each have n+1 entries; up[n] and down[0] must be
  /// zero; up[k] + down[k] <= 1 for all k.
  BirthDeathChain(std::vector<double> up, std::vector<double> down);

  size_t num_states() const { return up_.size(); }
  double up(int k) const { return up_[size_t(k)]; }
  double down(int k) const { return down_[size_t(k)]; }

  DenseMatrix transition() const;

  /// Stationary distribution via the detailed-balance product formula,
  /// accumulated in log space (stable for beta in the hundreds).
  std::vector<double> stationary() const;

  // ---- Builders for the paper's symmetric games ----

  /// Lumped chain of a 2-strategy weight-symmetric potential game:
  /// `phi_of_weight[k]` = Phi of any profile with k ones (size n+1).
  static BirthDeathChain weight_chain(int num_players, double beta,
                                      std::span<const double> phi_of_weight);

  /// Lumped chain of the AllOrNothingGame (Thm 4.3) on
  /// k = #players playing a nonzero strategy.
  static BirthDeathChain all_or_nothing_chain(int num_players,
                                              int32_t num_strategies,
                                              double beta);

 private:
  std::vector<double> up_, down_;
};

/// Weight-potential table [Phi(w=0), ..., Phi(w=n)] of a weight-symmetric
/// two-strategy potential game, extracted through the potential_row
/// oracle: the k-th row query — at the staircase profile 1^k 0^{n-k},
/// player k — delivers Phi(weight k) and Phi(weight k+1) in a single
/// incremental evaluation, so the whole table costs n row queries instead
/// of n+1 full potential evaluations. Weight symmetry is assumed, not
/// checked (callers pass the paper's symmetric games).
std::vector<double> weight_potential_table(const PotentialGame& game);

/// Lumped birth-death chain of a weight-symmetric two-strategy potential
/// game: weight_potential_table composed with weight_chain.
BirthDeathChain lumped_weight_chain(const PotentialGame& game, double beta);

/// Weight potential of the clique graphical coordination game:
/// phi(k) = -( (n-k)(n-k-1)/2 * delta0 + k(k-1)/2 * delta1 ).
std::vector<double> clique_weight_potential(int num_players, double delta0,
                                            double delta1);

/// The weight k* maximizing the clique potential barrier (paper Sect. 5.2:
/// the integer nearest (n-1) * delta0/(delta0+delta1) + 1/2).
int clique_barrier_weight(int num_players, double delta0, double delta1);

/// Exact strong-lumpability test + construction. Given a transition matrix
/// and a block label per state, returns the lumped transition matrix if
/// every pair of same-block states has identical block-to-block transition
/// mass (within tol); std::nullopt otherwise.
std::optional<DenseMatrix> lump_transition(const DenseMatrix& p,
                                           std::span<const uint32_t> block_of,
                                           uint32_t num_blocks,
                                           double tol = 1e-12);

/// Push-forward of a distribution along a block map.
std::vector<double> project_distribution(std::span<const double> dist,
                                         std::span<const uint32_t> block_of,
                                         uint32_t num_blocks);

}  // namespace logitdyn
