#include "core/lumped.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/math.hpp"

namespace logitdyn {

namespace {

/// Stable logistic 1 / (1 + e^z): the probability that a logit update
/// prefers the option whose potential is higher by z.
double inverse_logistic(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return e / (1.0 + e);
  }
  return 1.0 / (1.0 + std::exp(z));
}

}  // namespace

BirthDeathChain::BirthDeathChain(std::vector<double> up,
                                 std::vector<double> down)
    : up_(std::move(up)), down_(std::move(down)) {
  LD_CHECK(up_.size() == down_.size() && !up_.empty(),
           "BirthDeathChain: rate vector size mismatch");
  const size_t n = up_.size() - 1;
  LD_CHECK(up_[n] == 0.0, "BirthDeathChain: up[n] must be 0");
  LD_CHECK(down_[0] == 0.0, "BirthDeathChain: down[0] must be 0");
  for (size_t k = 0; k <= n; ++k) {
    LD_CHECK(up_[k] >= 0 && down_[k] >= 0 && up_[k] + down_[k] <= 1.0 + 1e-12,
             "BirthDeathChain: invalid rates at state ", k);
  }
}

DenseMatrix BirthDeathChain::transition() const {
  const size_t states = num_states();
  DenseMatrix p(states, states);
  for (size_t k = 0; k < states; ++k) {
    if (k + 1 < states) p(k, k + 1) = up_[k];
    if (k > 0) p(k, k - 1) = down_[k];
    p(k, k) = 1.0 - up_[k] - down_[k];
  }
  return p;
}

std::vector<double> BirthDeathChain::stationary() const {
  const size_t states = num_states();
  // Detailed balance: pi(k+1)/pi(k) = up(k)/down(k+1); accumulate in logs.
  std::vector<double> logpi(states, 0.0);
  for (size_t k = 0; k + 1 < states; ++k) {
    LD_CHECK(up_[k] > 0 && down_[k + 1] > 0,
             "BirthDeathChain::stationary: chain must be irreducible");
    logpi[k + 1] = logpi[k] + std::log(up_[k]) - std::log(down_[k + 1]);
  }
  const double lse = log_sum_exp(logpi);
  std::vector<double> pi(states);
  for (size_t k = 0; k < states; ++k) pi[k] = std::exp(logpi[k] - lse);
  return pi;
}

BirthDeathChain BirthDeathChain::weight_chain(
    int num_players, double beta, std::span<const double> phi_of_weight) {
  const int n = num_players;
  LD_CHECK(n >= 1, "weight_chain: need players");
  LD_CHECK(phi_of_weight.size() == size_t(n) + 1,
           "weight_chain: potential table must have n+1 entries");
  std::vector<double> up(size_t(n) + 1, 0.0), down(size_t(n) + 1, 0.0);
  for (int k = 0; k <= n; ++k) {
    if (k < n) {
      // Select one of the (n-k) zero-players, who flips to 1 with the
      // logit probability driven by the potential difference.
      const double dphi = phi_of_weight[size_t(k) + 1] - phi_of_weight[size_t(k)];
      up[size_t(k)] =
          (double(n - k) / double(n)) * inverse_logistic(beta * dphi);
    }
    if (k > 0) {
      const double dphi = phi_of_weight[size_t(k) - 1] - phi_of_weight[size_t(k)];
      down[size_t(k)] =
          (double(k) / double(n)) * inverse_logistic(beta * dphi);
    }
  }
  return BirthDeathChain(std::move(up), std::move(down));
}

BirthDeathChain BirthDeathChain::all_or_nothing_chain(int num_players,
                                                      int32_t num_strategies,
                                                      double beta) {
  const int n = num_players;
  const double m = double(num_strategies);
  LD_CHECK(n >= 2 && num_strategies >= 2, "all_or_nothing_chain: bad size");
  std::vector<double> up(size_t(n) + 1, 0.0), down(size_t(n) + 1, 0.0);
  // From k = 0 a zero-player faces u(0)=0 vs u(s!=0)=-1; otherwise every
  // strategy pays -1 and the update is uniform over all m strategies.
  // w = (m-1)e^{-beta}; both w/(1+w) and 1/(1+w) are computed directly —
  // the naive 1 - 1/(1+w) underflows to 0 once beta > ~36 log(10).
  const double w = (m - 1.0) * std::exp(-beta);
  const double stick0 = 1.0 / (1.0 + w);
  const double escape0 = w / (1.0 + w);
  for (int k = 0; k <= n; ++k) {
    if (k < n) {
      const double flip_up = (k == 0) ? escape0 : (m - 1.0) / m;
      up[size_t(k)] = (double(n - k) / double(n)) * flip_up;
    }
    if (k > 0) {
      const double flip_down = (k == 1) ? stick0 : 1.0 / m;
      down[size_t(k)] = (double(k) / double(n)) * flip_down;
    }
  }
  return BirthDeathChain(std::move(up), std::move(down));
}

std::vector<double> weight_potential_table(const PotentialGame& game) {
  const ProfileSpace& sp = game.space();
  const int n = sp.num_players();
  for (int i = 0; i < n; ++i) {
    LD_CHECK(sp.num_strategies(i) == 2,
             "weight_potential_table: requires a 2-strategy game");
  }
  std::vector<double> phi(size_t(n) + 1);
  Profile x(size_t(n), 0);
  double row[2];
  // Walk the staircase 0^n -> 1^k 0^{n-k}: at player k the row oracle
  // sees weights k (candidate 0) and k+1 (candidate 1).
  for (int k = 0; k < n; ++k) {
    game.potential_row(k, x, std::span<double>(row, 2));
    if (k == 0) phi[0] = row[0];
    phi[size_t(k) + 1] = row[1];
    x[size_t(k)] = 1;
  }
  return phi;
}

BirthDeathChain lumped_weight_chain(const PotentialGame& game, double beta) {
  return BirthDeathChain::weight_chain(game.num_players(), beta,
                                       weight_potential_table(game));
}

std::vector<double> clique_weight_potential(int num_players, double delta0,
                                            double delta1) {
  LD_CHECK(num_players >= 2, "clique_weight_potential: need n >= 2");
  std::vector<double> phi(size_t(num_players) + 1);
  const double n = double(num_players);
  for (int k = 0; k <= num_players; ++k) {
    const double kk = double(k);
    phi[size_t(k)] = -((n - kk) * (n - kk - 1.0) / 2.0 * delta0 +
                       kk * (kk - 1.0) / 2.0 * delta1);
  }
  return phi;
}

int clique_barrier_weight(int num_players, double delta0, double delta1) {
  const std::vector<double> phi =
      clique_weight_potential(num_players, delta0, delta1);
  return int(std::max_element(phi.begin(), phi.end()) - phi.begin());
}

std::optional<DenseMatrix> lump_transition(const DenseMatrix& p,
                                           std::span<const uint32_t> block_of,
                                           uint32_t num_blocks, double tol) {
  const size_t total = p.rows();
  LD_CHECK(p.cols() == total, "lump_transition: square matrix required");
  LD_CHECK(block_of.size() == total, "lump_transition: label size mismatch");
  for (uint32_t b : block_of) {
    LD_CHECK(b < num_blocks, "lump_transition: block label out of range");
  }
  DenseMatrix lumped(num_blocks, num_blocks);
  std::vector<uint8_t> seen(num_blocks, 0);
  std::vector<double> row(num_blocks);
  for (size_t x = 0; x < total; ++x) {
    std::fill(row.begin(), row.end(), 0.0);
    for (size_t y = 0; y < total; ++y) row[block_of[y]] += p(x, y);
    const uint32_t b = block_of[x];
    if (!seen[b]) {
      for (uint32_t c = 0; c < num_blocks; ++c) lumped(b, c) = row[c];
      seen[b] = 1;
    } else {
      for (uint32_t c = 0; c < num_blocks; ++c) {
        if (std::abs(lumped(b, c) - row[c]) > tol) return std::nullopt;
      }
    }
  }
  return lumped;
}

std::vector<double> project_distribution(std::span<const double> dist,
                                         std::span<const uint32_t> block_of,
                                         uint32_t num_blocks) {
  LD_CHECK(dist.size() == block_of.size(),
           "project_distribution: size mismatch");
  std::vector<double> out(num_blocks, 0.0);
  for (size_t i = 0; i < dist.size(); ++i) out[block_of[i]] += dist[i];
  return out;
}

}  // namespace logitdyn
