// Time-varying inverse noise — the paper's closing open problem ("the
// value of beta is not fixed, but varies according to some learning
// process"). A BetaSchedule maps the step index to beta_t;
// `AnnealedDynamics` wraps any `Dynamics` with a schedule, so annealed
// runs get the whole generic trajectory machinery (simulate, replicas,
// occupation measures, hitting times) — the standard simulated-annealing
// recipe for escaping the metastable wells that make fixed large-beta
// mixing exponential.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/dynamics.hpp"
#include "games/game.hpp"
#include "rng/rng.hpp"

namespace logitdyn {

/// beta as a function of the (1-based) step index.
using BetaSchedule = std::function<double(int64_t)>;

/// Constant schedule.
BetaSchedule constant_beta(double beta);

/// Linear ramp from beta_start to beta_end over `steps` (clamped after).
BetaSchedule linear_beta_ramp(double beta_start, double beta_end,
                              int64_t steps);

/// Logarithmic schedule beta_t = rate * log(1 + t): the classical
/// annealing shape, cooling slowly enough (for small rate) to track the
/// ground state.
BetaSchedule logarithmic_beta(double rate);

/// Any fixed-beta `Dynamics` driven by a `BetaSchedule`: step t first
/// sets the inner beta to schedule(t) (t counts from 1), then delegates
/// the update. With a constant schedule the trajectory is draw-for-draw
/// identical to the fixed-beta inner dynamics. Wrapping another
/// AnnealedDynamics is rejected (the outer schedule would be silently
/// discarded).
///
/// Owns a clone of the wrapped dynamics, so the caller's object is never
/// mutated. `step` advances a mutable schedule clock (see DESIGN.md §8):
/// one instance must not be stepped concurrently; the batch utilities
/// clone per replica, and each clone carries the current clock position.
class AnnealedDynamics : public Dynamics {
 public:
  AnnealedDynamics(const Dynamics& inner, BetaSchedule schedule);

  AnnealedDynamics(const AnnealedDynamics& other);
  AnnealedDynamics& operator=(const AnnealedDynamics&) = delete;

  const Game& game() const override { return inner_->game(); }

  /// The inner dynamics' current beta (schedule value of the last step).
  double beta() const override { return inner_->beta(); }

  /// Manual override of the inner beta; the next step re-applies the
  /// schedule.
  void set_beta(double beta) override { inner_->set_beta(beta); }

  size_t scratch_size() const override { return inner_->scratch_size(); }

  void step(Profile& x, Rng& rng, std::span<double> scratch) const override;
  using Dynamics::step;  // allocating convenience overload

  std::unique_ptr<Dynamics> clone() const override {
    return std::make_unique<AnnealedDynamics>(*this);
  }

  /// Steps taken so far (the schedule clock).
  int64_t current_step() const { return t_; }

  /// Rewind (or fast-forward) the schedule clock; the next step evaluates
  /// schedule(step_index + 1).
  void reset(int64_t step_index = 0) { t_ = step_index; }

 private:
  std::unique_ptr<Dynamics> inner_;
  BetaSchedule schedule_;
  mutable int64_t t_ = 0;
};

/// Run `steps` logit updates with beta = schedule(t), mutating x. Thin
/// shim over AnnealedDynamics + the generic simulator.
void simulate_annealed(const Game& game, const BetaSchedule& schedule,
                       Profile& x, int64_t steps, Rng& rng);

/// Fraction of `replicas` that end at a global potential minimizer after
/// `steps` annealed updates from `start` (the success metric the tests
/// use to compare schedules). Thin shim over AnnealedDynamics + the
/// generic replica batch.
double annealed_success_rate(const PotentialGame& game,
                             const BetaSchedule& schedule,
                             const Profile& start, int64_t steps,
                             int replicas, uint64_t master_seed);

}  // namespace logitdyn
