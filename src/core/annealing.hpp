// Time-varying inverse noise — the paper's closing open problem ("the
// value of beta is not fixed, but varies according to some learning
// process"). A BetaSchedule maps the step index to beta_t; the annealed
// simulator runs the logit dynamics with the scheduled noise, the
// standard simulated-annealing recipe for escaping the metastable wells
// that make fixed large-beta mixing exponential.
#pragma once

#include <cstdint>
#include <functional>

#include "games/game.hpp"
#include "rng/rng.hpp"

namespace logitdyn {

/// beta as a function of the (1-based) step index.
using BetaSchedule = std::function<double(int64_t)>;

/// Constant schedule.
BetaSchedule constant_beta(double beta);

/// Linear ramp from beta_start to beta_end over `steps` (clamped after).
BetaSchedule linear_beta_ramp(double beta_start, double beta_end,
                              int64_t steps);

/// Logarithmic schedule beta_t = rate * log(1 + t): the classical
/// annealing shape, cooling slowly enough (for small rate) to track the
/// ground state.
BetaSchedule logarithmic_beta(double rate);

/// Run `steps` logit updates with beta = schedule(t), mutating x.
void simulate_annealed(const Game& game, const BetaSchedule& schedule,
                       Profile& x, int64_t steps, Rng& rng);

/// Fraction of `replicas` that end at a global potential minimizer after
/// `steps` annealed updates from `start` (the success metric the tests
/// use to compare schedules).
double annealed_success_rate(const PotentialGame& game,
                             const BetaSchedule& schedule,
                             const Profile& start, int64_t steps,
                             int replicas, uint64_t master_seed);

}  // namespace logitdyn
