#include "core/logit_operator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/logit.hpp"
#include "support/error.hpp"
#include "support/isa.hpp"
#include "support/math.hpp"

namespace logitdyn {

namespace {

/// Output states evaluated per structure-of-arrays block: the oracle rows
/// of a whole block land in one contiguous buffer so the softmax
/// max-subtract + fast_exp transform runs as ONE flat loop over
/// kStateBlock * total_strategies entries — long enough to vectorize —
/// instead of one short std::exp loop per player per state.
constexpr size_t kStateBlock = 32;

}  // namespace

LogitOperator::LogitOperator(const Game& game, double beta, UpdateKind kind,
                             ThreadPool* pool, ApplyMode mode)
    : game_(game),
      beta_(beta),
      kind_(kind),
      pool_(pool ? pool : &ThreadPool::global()),
      mode_(mode) {
  LD_CHECK(beta >= 0.0, "LogitOperator: beta must be non-negative");
}

void LogitOperator::set_beta(double beta) {
  LD_CHECK(beta >= 0.0, "LogitOperator: beta must be non-negative");
  beta_ = beta;
}

size_t LogitOperator::size() const { return game_.space().num_profiles(); }

void LogitOperator::apply(std::span<const double> x,
                          std::span<double> y) const {
  apply_many(x, y, 1);
}

void LogitOperator::apply_many(std::span<const double> xs,
                               std::span<double> ys, size_t count) const {
  const size_t n = size();
  LD_CHECK(xs.size() == count * n && ys.size() == count * n,
           "LogitOperator: size mismatch");
  LD_CHECK(xs.data() != ys.data(), "LogitOperator: aliasing not allowed");
  if (count == 0) return;
  if (kind_ == UpdateKind::kAsynchronous) {
    if (mode_ == ApplyMode::kVectorized) {
      apply_async(xs, ys, count);
    } else {
      apply_async_scalar(xs, ys, count);
    }
  } else {
    apply_sync(xs, ys, count);
  }
}

void LogitOperator::apply_async(std::span<const double> xs,
                                std::span<double> ys, size_t count) const {
  const ProfileSpace& sp = game_.space();
  const size_t total = sp.num_profiles();
  const int n = sp.num_players();
  const size_t ts = sp.total_strategies();
  const double inv_n = 1.0 / double(n);
  // count > 1 runs on interleaved (state-major) views: one transpose in,
  // one out, and every neighbour gather inside the kernel becomes a
  // contiguous count-wide run instead of count loads scattered `total`
  // apart. count == 1 reads/writes the caller's buffers directly (the
  // layouts coincide).
  const bool interleave = count > 1;
  if (interleave) {
    if (xq_.size() < count * total) xq_.resize(count * total);
    if (yq_.size() < count * total) yq_.resize(count * total);
    blocked_for(*pool_, total, [&](size_t lo, size_t hi) {
      for (size_t b = 0; b < count; ++b) {
        const double* src = xs.data() + b * total;
        for (size_t i = lo; i < hi; ++i) xq_[i * count + b] = src[i];
      }
    });
  }
  const double* xin = interleave ? xq_.data() : xs.data();
  double* yout = interleave ? yq_.data() : ys.data();
  // Contiguous output shards, one per worker; each shard owns reusable
  // scratch (odometer profile, oracle-row block, accumulators — sized on
  // first apply, so steady-state applies never allocate). Every output
  // element is produced by exactly one shard with a fixed reduction order
  // (players ascending, strategies ascending, per batch vector), so
  // output is bit-identical for every pool size and every batch width.
  const size_t shards =
      std::max<size_t>(1, std::min(pool_->num_threads(), total));
  const size_t block = (total + shards - 1) / shards;
  if (scratch_.size() < shards) scratch_.resize(shards);
  parallel_for(*pool_, 0, shards, [&](size_t shard) {
    const size_t lo = shard * block;
    const size_t hi = std::min(total, lo + block);
    if (lo >= hi) return;
    ShardScratch& ws = scratch_[shard];
    ws.rows.resize(kStateBlock * ts);
    ws.shift.resize(kStateBlock * ts);
    if (ws.acc.size() < count) ws.acc.resize(count);
    if (ws.nb.size() < count) ws.nb.resize(count);
    ws.strat.resize(kStateBlock * size_t(n));
    // One decode per shard; consecutive states advance by the mixed-radix
    // odometer (player 0 is the least-significant digit) — O(1) amortized
    // instead of a full div/mod decode per state.
    sp.decode_into(lo, ws.x);
    for (size_t b0 = lo; b0 < hi; b0 += kStateBlock) {
      const size_t bn = std::min(kStateBlock, hi - b0);
      // 1) One oracle-row gather per output state, into the SoA block.
      for (size_t bi = 0; bi < bn; ++bi) {
        std::copy(ws.x.begin(), ws.x.end(),
                  ws.strat.begin() + bi * size_t(n));
        game_.utility_rows(
            ws.x, std::span<double>(ws.rows.data() + bi * ts, ts));
        if (b0 + bi + 1 < hi) {
          for (int p = 0; p < n; ++p) {
            if (++ws.x[size_t(p)] < sp.num_strategies(p)) break;
            ws.x[size_t(p)] = 0;
          }
        }
      }
      // 2) Segmented max, expanded per entry so step 3 stays flat.
      for (size_t bi = 0; bi < bn; ++bi) {
        double* row = ws.rows.data() + bi * ts;
        double* sh = ws.shift.data() + bi * ts;
        for (int p = 0; p < n; ++p) {
          const size_t o = sp.strategy_offset(p);
          const size_t m = size_t(sp.num_strategies(p));
          double mx = row[o];
          for (size_t s = 1; s < m; ++s) mx = std::max(mx, row[o + s]);
          for (size_t s = 0; s < m; ++s) sh[o + s] = mx;
        }
      }
      // 3) The vectorized inner loop: one branch-free fast_exp pass over
      // the whole block's Gibbs weights, dispatched to the widest ISA
      // the CPU supports (bit-identical on every path, DESIGN.md §12).
      isa_kernels().exp_affine_span(ws.rows.data(), ws.shift.data(), beta_,
                                    bn * ts);
      // 4) Accumulate: sigma_p(j_p | j) = w[j_p] / sum_s w[s], and the
      // in-neighbour sum over player p's column comes from the stride
      // identity (no per-neighbour re-encode). Per vector the reduction
      // order (s ascending within p, then p ascending) is identical in
      // both layouts, so batches of any width stay bit-identical to
      // single applies.
      for (size_t bi = 0; bi < bn; ++bi) {
        const size_t j = b0 + bi;
        const double* row = ws.rows.data() + bi * ts;
        const Strategy* xj = ws.strat.data() + bi * size_t(n);
        std::fill(ws.acc.begin(), ws.acc.begin() + count, 0.0);
        for (int p = 0; p < n; ++p) {
          const size_t o = sp.strategy_offset(p);
          const size_t m = size_t(sp.num_strategies(p));
          double seg = 0.0;
          for (size_t s = 0; s < m; ++s) seg += row[o + s];
          const double sigma = row[o + size_t(xj[p])] / seg;
          const size_t stride = sp.stride(p);
          const size_t base = j - size_t(xj[p]) * stride;
          if (interleave) {
            std::fill(ws.nb.begin(), ws.nb.begin() + count, 0.0);
            for (size_t s = 0; s < m; ++s) {
              const double* src = xin + (base + s * stride) * count;
              for (size_t b = 0; b < count; ++b) ws.nb[b] += src[b];
            }
            for (size_t b = 0; b < count; ++b) {
              ws.acc[b] += sigma * ws.nb[b];
            }
          } else {
            double ssum = 0.0;
            for (size_t s = 0; s < m; ++s) ssum += xin[base + s * stride];
            ws.acc[0] += sigma * ssum;
          }
        }
        if (interleave) {
          double* dst = yout + j * count;
          for (size_t b = 0; b < count; ++b) dst[b] = ws.acc[b] * inv_n;
        } else {
          yout[j] = ws.acc[0] * inv_n;
        }
      }
    }
  });
  if (interleave) {
    blocked_for(*pool_, total, [&](size_t lo, size_t hi) {
      for (size_t b = 0; b < count; ++b) {
        double* dst = ys.data() + b * total;
        for (size_t i = lo; i < hi; ++i) dst[i] = yq_[i * count + b];
      }
    });
  }
}

void LogitOperator::apply_async_scalar(std::span<const double> xs,
                                       std::span<double> ys,
                                       size_t count) const {
  // The PR-4 scalar path, retained verbatim as the certified cross-check
  // (std::exp softmax via logit_update_rows_scalar, per-neighbour
  // re-encode): the vectorized kernel must agree with it to ~1e-12 per
  // output (tested, and gated in CI through BENCH_apply.json).
  const ProfileSpace& sp = game_.space();
  const size_t total = sp.num_profiles();
  const int n = sp.num_players();
  const double inv_n = 1.0 / double(n);
  const size_t shards =
      std::max<size_t>(1, std::min(pool_->num_threads(), total));
  const size_t block = (total + shards - 1) / shards;
  parallel_for(*pool_, 0, shards, [&](size_t shard) {
    const size_t lo = shard * block;
    const size_t hi = std::min(total, lo + block);
    if (lo >= hi) return;
    Profile x;
    std::vector<double> rows(sp.total_strategies());
    std::vector<double> acc(count);
    std::vector<size_t> nbr(size_t(sp.max_strategies()));
    for (size_t j = lo; j < hi; ++j) {
      sp.decode_into(j, x);
      logit_update_rows_scalar(game_, beta_, x, rows);
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int p = 0; p < n; ++p) {
        const int32_t m = sp.num_strategies(p);
        const double sigma =
            rows[sp.strategy_offset(p) + size_t(x[size_t(p)])];
        for (Strategy s = 0; s < m; ++s) {
          nbr[size_t(s)] = sp.with_strategy(j, p, s);
        }
        for (size_t b = 0; b < count; ++b) {
          const double* xb = xs.data() + b * total;
          double ssum = 0.0;
          for (Strategy s = 0; s < m; ++s) ssum += xb[nbr[size_t(s)]];
          acc[b] += sigma * ssum;
        }
      }
      for (size_t b = 0; b < count; ++b) {
        ys[b * total + j] = acc[b] * inv_n;
      }
    }
  });
}

void LogitOperator::apply_sync(std::span<const double> xs,
                               std::span<double> ys, size_t count) const {
  const ProfileSpace& sp = game_.space();
  const size_t total = sp.num_profiles();
  const int n = sp.num_players();
  std::fill(ys.begin(), ys.end(), 0.0);
  sync_rows_.resize(sp.total_strategies());
  if (sync_weight_.size() < count) sync_weight_.resize(count);
  // Sources run sequentially (so each output accumulates contributions in
  // ascending source order — the dense left-multiply order); the O(|S|)
  // target scatter of each source's product row is sharded over disjoint
  // target ranges, which keeps every pool size bit-identical. The mode
  // only switches the update-rule softmax: the product loop over targets
  // dominates either way (big synchronous workloads belong on the
  // sparsified csr(drop_tol) route, DESIGN.md §11).
  for (size_t i = 0; i < total; ++i) {
    bool any = false;
    for (size_t b = 0; b < count; ++b) {
      sync_weight_[b] = xs[b * total + i];
      any = any || sync_weight_[b] != 0.0;
    }
    if (!any) continue;
    sp.decode_into(i, sync_x_);
    if (mode_ == ApplyMode::kVectorized) {
      logit_update_rows(game_, beta_, sync_x_, sync_rows_);
    } else {
      logit_update_rows_scalar(game_, beta_, sync_x_, sync_rows_);
    }
    parallel_for(
        *pool_, 0, total,
        [&](size_t to) {
          double prob = 1.0;
          for (int p = 0; p < n; ++p) {
            prob *=
                sync_rows_[sp.strategy_offset(p) +
                           size_t(sp.strategy_of(to, p))];
            if (prob == 0.0) break;
          }
          if (prob == 0.0) return;
          for (size_t b = 0; b < count; ++b) {
            if (sync_weight_[b] != 0.0) {
              ys[b * total + to] += sync_weight_[b] * prob;
            }
          }
        },
        /*min_block=*/1024);
  }
}

void LogitOperator::row(size_t idx, std::vector<uint32_t>& cols,
                        std::vector<double>& vals) const {
  LD_CHECK(kind_ == UpdateKind::kAsynchronous,
           "LogitOperator::row: asynchronous kernel only");
  const ProfileSpace& sp = game_.space();
  LD_CHECK(idx < sp.num_profiles(), "LogitOperator::row: index out of range");
  // Member scratch: row-by-row consumers (the matrix-free sweep cut
  // walks all |S| rows) must not pay three heap allocations per state.
  sp.decode_into(idx, row_x_);
  row_rows_.resize(sp.total_strategies());
  // Always the shared (vectorized-softmax) update rule, never the
  // scalar-reference one: rows must stay bit-identical to the
  // TransitionBuilder CSR rows, which run on the same kernel.
  logit_update_rows(game_, beta_, row_x_, row_rows_);
  row_entries_.clear();
  row_entries_.reserve(sp.total_strategies() + 1);
  async_row_entries(sp, idx, row_x_, row_rows_, row_entries_);
  cols.clear();
  vals.clear();
  cols.reserve(row_entries_.size());
  vals.reserve(row_entries_.size());
  for (const auto& [c, v] : row_entries_) {
    cols.push_back(c);
    vals.push_back(v);
  }
}

}  // namespace logitdyn
