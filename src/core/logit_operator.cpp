#include "core/logit_operator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/logit.hpp"
#include "support/error.hpp"

namespace logitdyn {

LogitOperator::LogitOperator(const Game& game, double beta, UpdateKind kind,
                             ThreadPool* pool)
    : game_(game),
      beta_(beta),
      kind_(kind),
      pool_(pool ? pool : &ThreadPool::global()) {
  LD_CHECK(beta >= 0.0, "LogitOperator: beta must be non-negative");
}

void LogitOperator::set_beta(double beta) {
  LD_CHECK(beta >= 0.0, "LogitOperator: beta must be non-negative");
  beta_ = beta;
}

size_t LogitOperator::size() const { return game_.space().num_profiles(); }

void LogitOperator::apply(std::span<const double> x,
                          std::span<double> y) const {
  apply_many(x, y, 1);
}

void LogitOperator::apply_many(std::span<const double> xs,
                               std::span<double> ys, size_t count) const {
  const size_t n = size();
  LD_CHECK(xs.size() == count * n && ys.size() == count * n,
           "LogitOperator: size mismatch");
  LD_CHECK(xs.data() != ys.data(), "LogitOperator: aliasing not allowed");
  if (count == 0) return;
  if (kind_ == UpdateKind::kAsynchronous) {
    apply_async(xs, ys, count);
  } else {
    apply_sync(xs, ys, count);
  }
}

void LogitOperator::apply_async(std::span<const double> xs,
                                std::span<double> ys, size_t count) const {
  const ProfileSpace& sp = game_.space();
  const size_t total = sp.num_profiles();
  const int n = sp.num_players();
  const double inv_n = 1.0 / double(n);
  // Contiguous output shards, one per worker; each shard owns its decode
  // scratch and oracle-row buffer. Every output element is produced by
  // exactly one shard with a fixed reduction order (players ascending,
  // strategies ascending, then batch), so output is bit-identical for
  // every pool size.
  const size_t shards =
      std::max<size_t>(1, std::min(pool_->num_threads(), total));
  const size_t block = (total + shards - 1) / shards;
  parallel_for(*pool_, 0, shards, [&](size_t shard) {
    const size_t lo = shard * block;
    const size_t hi = std::min(total, lo + block);
    if (lo >= hi) return;
    Profile x;
    std::vector<double> rows(sp.total_strategies());
    std::vector<double> acc(count);
    std::vector<size_t> nbr(size_t(sp.max_strategies()));
    for (size_t j = lo; j < hi; ++j) {
      sp.decode_into(j, x);
      logit_update_rows(game_, beta_, x, rows);
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int p = 0; p < n; ++p) {
        const int32_t m = sp.num_strategies(p);
        const double sigma =
            rows[sp.strategy_offset(p) + size_t(x[size_t(p)])];
        for (Strategy s = 0; s < m; ++s) nbr[size_t(s)] = sp.with_strategy(j, p, s);
        for (size_t b = 0; b < count; ++b) {
          const double* xb = xs.data() + b * total;
          double ssum = 0.0;
          for (Strategy s = 0; s < m; ++s) ssum += xb[nbr[size_t(s)]];
          acc[b] += sigma * ssum;
        }
      }
      for (size_t b = 0; b < count; ++b) {
        ys[b * total + j] = acc[b] * inv_n;
      }
    }
  });
}

void LogitOperator::apply_sync(std::span<const double> xs,
                               std::span<double> ys, size_t count) const {
  const ProfileSpace& sp = game_.space();
  const size_t total = sp.num_profiles();
  const int n = sp.num_players();
  std::fill(ys.begin(), ys.end(), 0.0);
  Profile x;
  std::vector<double> rows(sp.total_strategies());
  std::vector<double> weight(count);
  // Sources run sequentially (so each output accumulates contributions in
  // ascending source order — the dense left-multiply order); the O(|S|)
  // target scatter of each source's product row is sharded over disjoint
  // target ranges, which keeps every pool size bit-identical.
  for (size_t i = 0; i < total; ++i) {
    bool any = false;
    for (size_t b = 0; b < count; ++b) {
      weight[b] = xs[b * total + i];
      any = any || weight[b] != 0.0;
    }
    if (!any) continue;
    sp.decode_into(i, x);
    logit_update_rows(game_, beta_, x, rows);
    parallel_for(
        *pool_, 0, total,
        [&](size_t to) {
          double prob = 1.0;
          for (int p = 0; p < n; ++p) {
            prob *= rows[sp.strategy_offset(p) + size_t(sp.strategy_of(to, p))];
            if (prob == 0.0) break;
          }
          if (prob == 0.0) return;
          for (size_t b = 0; b < count; ++b) {
            if (weight[b] != 0.0) ys[b * total + to] += weight[b] * prob;
          }
        },
        /*min_block=*/1024);
  }
}

void LogitOperator::row(size_t idx, std::vector<uint32_t>& cols,
                        std::vector<double>& vals) const {
  LD_CHECK(kind_ == UpdateKind::kAsynchronous,
           "LogitOperator::row: asynchronous kernel only");
  const ProfileSpace& sp = game_.space();
  LD_CHECK(idx < sp.num_profiles(), "LogitOperator::row: index out of range");
  Profile x;
  sp.decode_into(idx, x);
  std::vector<double> rows(sp.total_strategies());
  logit_update_rows(game_, beta_, x, rows);
  std::vector<std::pair<uint32_t, double>> entries;
  entries.reserve(sp.total_strategies() + 1);
  async_row_entries(sp, idx, x, rows, entries);
  cols.clear();
  vals.clear();
  cols.reserve(entries.size());
  vals.reserve(entries.size());
  for (const auto& [c, v] : entries) {
    cols.push_back(c);
    vals.push_back(v);
  }
}

}  // namespace logitdyn
