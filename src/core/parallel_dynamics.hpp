// Synchronous ("parallel") logit dynamics — the variation raised in the
// paper's conclusions, where *all* players update simultaneously in each
// round (the beta = infinity special case, parallel best response, is
// Nisan–Schapira–Zohar's setting).
//
// One round: every player i independently redraws her strategy from
// sigma_i(. | x), all against the *old* profile x:
//     P(x, y) = prod_i sigma_i(y_i | x).
// Unlike the asynchronous chain this is generally NOT reversible and its
// stationary law is not the Gibbs measure; at large beta on coordination
// games it exhibits the classic period-2 flip-flop (eigenvalues near -1),
// which the tests and the ablation bench demonstrate.
#pragma once

#include <vector>

#include "games/game.hpp"
#include "linalg/dense_matrix.hpp"
#include "rng/rng.hpp"

namespace logitdyn {

/// The synchronous-update logit chain over the same profile space.
class ParallelLogitChain {
 public:
  ParallelLogitChain(const Game& game, double beta);

  const Game& game() const { return game_; }
  double beta() const { return beta_; }
  size_t num_states() const { return game_.space().num_profiles(); }

  /// Dense transition matrix: P(x, y) = prod_i sigma_i(y_i | x).
  /// |S|^2 work per row pair; intended for small spaces.
  DenseMatrix dense_transition() const;

  /// Stationary distribution by direct solve (no closed form exists in
  /// general — see the paper's conclusions).
  std::vector<double> stationary() const;

  /// One synchronous round in place.
  void step(Profile& x, Rng& rng) const;

 private:
  const Game& game_;
  double beta_;
};

}  // namespace logitdyn
