// Synchronous ("parallel") logit dynamics — the variation raised in the
// paper's conclusions, where *all* players update simultaneously in each
// round (the beta = infinity special case, parallel best response, is
// Nisan–Schapira–Zohar's setting).
//
// One round: every player i independently redraws her strategy from
// sigma_i(. | x), all against the *old* profile x:
//     P(x, y) = prod_i sigma_i(y_i | x).
// Unlike the asynchronous chain this is generally NOT reversible and its
// stationary law is not the Gibbs measure; at large beta on coordination
// games it exhibits the classic period-2 flip-flop (eigenvalues near -1),
// which the tests and the ablation bench demonstrate.
#pragma once

#include <memory>
#include <vector>

#include "core/dynamics.hpp"
#include "games/game.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "rng/rng.hpp"

namespace logitdyn {

class ThreadPool;

/// The synchronous-update logit chain over the same profile space.
/// Implements `Dynamics`, so every generic trajectory utility (simulate,
/// replicas, hitting times) applies to synchronous rounds unchanged.
class ParallelLogitChain : public Dynamics {
 public:
  ParallelLogitChain(const Game& game, double beta);

  const Game& game() const override { return game_; }
  double beta() const override { return beta_; }
  void set_beta(double beta) override;

  /// Dense transition matrix: P(x, y) = prod_i sigma_i(y_i | x).
  /// |S|^2 work per row pair; intended for small spaces.
  DenseMatrix dense_transition() const;
  DenseMatrix dense_transition(ThreadPool& pool) const;

  /// CSR transition matrix. The exact synchronous kernel has fully dense
  /// rows (every target is reachable in one round), so a positive
  /// `drop_tol` is how large-beta kernels become genuinely sparse: rows
  /// then sum to 1 minus the dropped mass (<= |S| * drop_tol per row).
  CsrMatrix csr_transition(double drop_tol = 0.0) const;
  CsrMatrix csr_transition(ThreadPool& pool, double drop_tol = 0.0) const;

  /// Stationary distribution by direct solve (no closed form exists in
  /// general — see the paper's conclusions).
  std::vector<double> stationary() const;

  /// One synchronous round in place. `scratch` is caller-owned, size >=
  /// scratch_size() = total_strategies(): one batched update-rule call
  /// serves every player's simultaneous draw against the old profile.
  void step(Profile& x, Rng& rng, std::span<double> scratch) const override;
  using Dynamics::step;  // allocating convenience overload

  size_t scratch_size() const override {
    return game_.space().total_strategies();
  }

  std::unique_ptr<Dynamics> clone() const override {
    return std::make_unique<ParallelLogitChain>(*this);
  }

 private:
  const Game& game_;
  double beta_;
};

}  // namespace logitdyn
