// ExperimentRegistry (DESIGN.md §10): experiments register as named
// functions (const ScenarioSpec&, const RunOptions&, Report&) and every
// front end — the logitdyn_lab CLI, the thin bench shims, the tests —
// runs them through one entry point. Adding a paper experiment means
// registering a function, not writing a binary.
#pragma once

#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/report.hpp"
#include "scenario/scenario.hpp"

namespace logitdyn::scenario {

using ExperimentFn =
    std::function<void(const ScenarioSpec&, const RunOptions&, Report&)>;

struct ExperimentInfo {
  std::string name;   ///< registry key, e.g. "t56_ring"
  std::string title;  ///< header line (also shown by `logitdyn_lab list`)
  std::string claim;  ///< the paper claim the experiment reproduces
  ScenarioSpec default_scenario;
  ExperimentFn run;
};

/// Frozen-after-construction like GameRegistry (DESIGN.md §15): instance()
/// registers the built-ins and freezes, after which contains/get/names/run
/// are const over immutable deque storage and safe under concurrent run()
/// calls from the service scheduler's workers. add() on a frozen registry
/// throws.
class ExperimentRegistry {
 public:
  /// The singleton, with all built-in experiments registered.
  static ExperimentRegistry& instance();

  void add(ExperimentInfo info);  ///< throws on duplicates or once frozen
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  bool contains(const std::string& name) const;
  const ExperimentInfo& get(const std::string& name) const;  ///< throws
  std::vector<std::string> names() const;  ///< registration order

  /// Run one experiment into `report`: fills the report's scenario/options
  /// meta, validates the spec against the game registry, and invokes the
  /// experiment function. `spec == nullptr` runs the default scenario.
  void run(const std::string& name, const ScenarioSpec* spec,
           const RunOptions& opts, Report& report) const;

 private:
  ExperimentRegistry() = default;
  std::deque<ExperimentInfo> experiments_;
  bool frozen_ = false;
};

/// Entry point for the thin bench shims: run `name` on its default
/// scenario and options, echoing to stdout exactly like the pre-registry
/// binary; returns a process exit code.
int run_registered_main(const std::string& name);

/// Registers every built-in experiment (idempotent; called by
/// ExperimentRegistry::instance()).
void register_builtin_experiments(ExperimentRegistry& registry);

/// Parse a comma-separated beta grid ("0.5,1.0,2"); throws Error on bad
/// tokens or an empty list. Shared by every CLI front end.
std::vector<double> parse_beta_list(const std::string& arg);

}  // namespace logitdyn::scenario
