// Experiment E8 — Theorem 5.1: graphical coordination games mix in time
// exp(chi(G) (delta0+delta1) beta) * poly(n), chi(G) = cutwidth. Port of
// bench/exp_t51_cutwidth; stdout unchanged on defaults.
#include <string>

#include "analysis/bounds.hpp"
#include "analysis/spectral.hpp"
#include "core/chain.hpp"
#include "games/graphical_coordination.hpp"
#include "graph/builders.hpp"
#include "graph/cutwidth.hpp"
#include "rng/rng.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"
#include "support/error.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E8: cutwidth controls graphical-coordination mixing (Theorem 5.1)",
      "claim: t_mix <= 2n^3 e^{chi(G)(d0+d1)beta} (n d0 beta + 1)");

  const CoordinationPayoffs pay = CoordinationPayoffs::from_deltas(
      spec.params.at("delta0").as_double(),
      spec.params.at("delta1").as_double());
  // The topology comparisons are per-beta; silently dropping grid entries
  // would misreport what was swept.
  if (opts.beta_grid.size() > 1) {
    throw Error("t51_cutwidth runs at a single beta; pass one --beta-grid "
                "value");
  }
  const double beta = opts.betas_or({0.8})[0];

  report.section("topology sweep at n = 6, delta0 = 1, delta1 = 0.5, "
                 "beta = 0.8");
  struct Case {
    const char* name;
    Graph graph;
  };
  const Case cases[] = {
      {"path", make_path(6)},        {"binary-tree", make_binary_tree(6)},
      {"ring", make_ring(6)},        {"star", make_star(6)},
      {"grid-2x3", make_grid(2, 3)}, {"clique", make_clique(6)},
  };
  ReportTable& table = report.table(
      {"graph", "chi(G)", "t_mix (exact)", "thm 5.1 bound", "holds"});
  for (const Case& c : cases) {
    GraphicalCoordinationGame game(c.graph, pay);
    LogitChain chain(game, beta);
    const MixingResult mix = harness::exact_tmix(chain);
    const double chi = double(cutwidth_exact(c.graph));
    const double bound =
        bounds::thm51_tmix_upper(6, beta, chi, pay.delta0(), pay.delta1());
    table.row()
        .cell(c.name)
        .cell(int64_t(chi))
        .cell(harness::tmix_cell(mix))
        .cell_sci(bound)
        .cell(!mix.converged || double(mix.time) <= bound ? "yes" : "NO");
  }
  table.print();

  report.section(
      "mixing tracks cutwidth: same |E| ~ n, increasing chi (beta = 1.2)");
  // Path, ring, and star have 5-6 edges on 6 vertices but cutwidth 1, 2, 3.
  ReportTable& track = report.table({"graph", "chi(G)", "t_mix (exact)"});
  const Case sparse[] = {
      {"path", make_path(6)}, {"ring", make_ring(6)}, {"star", make_star(6)}};
  for (const Case& c : sparse) {
    GraphicalCoordinationGame game(c.graph, pay);
    const MixingResult mix = harness::exact_tmix(LogitChain(game, 1.2));
    track.row()
        .cell(c.name)
        .cell(int64_t(cutwidth_exact(c.graph)))
        .cell(harness::tmix_cell(mix));
  }
  track.print();

  if (opts.smoke) return;  // the solver ablation + 8192-state Lanczos runs

  report.section("cutwidth solver ablation: exact DP vs heuristic");
  const uint64_t seed = opts.seed_or(31);
  report.record_seed("cutwidth_heuristic", seed);
  Rng rng(seed);
  ReportTable& solver =
      report.table({"graph", "n", "exact chi", "heuristic chi", "optimal?"});
  struct SolverCase {
    std::string name;
    Graph graph;
  };
  std::vector<SolverCase> solver_cases;
  solver_cases.push_back({"ring(16)", make_ring(16)});
  solver_cases.push_back({"grid-4x4", make_grid(4, 4)});
  solver_cases.push_back({"binary-tree(15)", make_binary_tree(15)});
  solver_cases.push_back({"G(14,0.3)", make_erdos_renyi(14, 0.3, rng)});
  solver_cases.push_back({"random-3-regular(14)",
                          make_random_regular(14, 3, rng)});
  for (const SolverCase& c : solver_cases) {
    const uint32_t exact = cutwidth_exact(c.graph);
    const CutwidthHeuristicResult h = cutwidth_heuristic(c.graph, rng, 8);
    solver.row()
        .cell(c.name)
        .cell(int64_t(c.graph.num_vertices()))
        .cell(int64_t(exact))
        .cell(int64_t(h.cutwidth))
        .cell(h.cutwidth == exact ? "yes" : "upper bound only");
  }
  solver.print();

  report.section(
      "operator scale: relaxation time tracks cutwidth at n = 13 "
      "(8192 states, Lanczos on the matrix-free kernel)");
  // The full chain no longer fits the dense path; the operator path
  // reproduces the Theorem 5.1 ordering — same edge budget, growing
  // cutwidth, growing t_rel — without materializing P.
  const Case big[] = {
      {"path", make_path(13)}, {"ring", make_ring(13)}, {"star", make_star(13)}};
  ReportTable& scale = report.table(
      {"graph", "chi(G)", "spectral gap", "t_rel", "lanczos iters"});
  for (const Case& c : big) {
    GraphicalCoordinationGame game(c.graph, pay);
    LogitChain chain(game, beta);
    const std::vector<double> pi = chain.stationary();
    SpectralOptions sopts;  // 8192 > cutover: operator path by default
    sopts.lanczos.tol = 1e-10;
    const SpectralSummary s =
        spectral_summary(game, beta, UpdateKind::kAsynchronous, pi, sopts);
    scale.row()
        .cell(c.name)
        .cell(int64_t(cutwidth_exact(c.graph)))
        .cell(s.spectral_gap(), 8)
        .cell(s.relaxation_time(), 2)
        .cell(std::to_string(s.lanczos_iterations) +
              (s.converged ? "" : " (UNCONVERGED)"));
  }
  scale.print();
  report.note("larger cutwidth -> smaller gap -> larger t_rel, as "
              "Theorem 5.1 predicts.");
}

}  // namespace

void register_t51_cutwidth(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "graphical_coordination";
  spec.n = 6;
  spec.params.set("delta0", 1.0).set("delta1", 0.5);
  Json topo = Json::object();
  topo.set("kind", "ring");
  spec.topology = std::move(topo);
  reg.add({"t51_cutwidth",
           "E8: cutwidth controls graphical-coordination mixing "
           "(Theorem 5.1)",
           "t_mix <= 2n^3 e^{chi(G)(d0+d1)beta} (n d0 beta + 1)",
           spec, run});
}

}  // namespace logitdyn::scenario
