// Extension experiment — hitting times vs mixing times. Port of
// bench/exp_hitting_vs_mixing; stdout unchanged on defaults.
//
// The related work the paper positions itself against (Asadpour–Saberi,
// Montanari–Saberi) measures convergence by the *hitting time of one
// profile*; the paper argues mixing time is the right notion. This
// experiment quantifies the gap on the clique coordination game.
#include <sstream>

#include "analysis/hitting.hpp"
#include "core/lumped.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "EXT: hitting time (Montanari-Saberi's metric) vs mixing time",
      "clique coordination, exact lumped chains: E[hit dominant eq.] vs "
      "t_mix(1/4)");

  {
    const int n = spec.n;
    std::ostringstream title;
    title << "n = " << n << ", delta0 = 1.5/(n-1), delta1 = 1.0/(n-1): "
          << "beta sweep";
    report.section(title.str());
    const double d0 = 1.5 / double(n - 1), d1 = 1.0 / double(n - 1);
    const std::vector<double> wphi = clique_weight_potential(n, d0, d1);
    ReportTable& table =
        report.table({"beta", "E[hit 0 | start 1] (wrong well)",
                      "E[hit 0 | start k*]", "t_mix(1/4)"});
    const std::vector<double> grid = opts.betas_or(
        opts.smoke ? std::vector<double>{2.0, 6.0}
                   : std::vector<double>{2.0, 4.0, 6.0, 8.0});
    for (double beta : grid) {
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const int k_star = clique_barrier_weight(n, d0, d1);
      const double from_ones = birth_death_hitting_time(bd, n, 0);
      const double from_ridge = birth_death_hitting_time(bd, k_star, 0);
      const MixingResult mix = harness::exact_tmix(bd);
      table.row()
          .cell(beta, 1)
          .cell_sci(from_ones)
          .cell_sci(from_ridge)
          .cell(harness::tmix_cell(mix));
    }
    table.print();
    report.note("both hitting the dominant equilibrium from the wrong well "
                "and t_mix are barrier-crossing times of the same order "
                "(ridge starts save only a constant factor): in this "
                "direction the two notions agree.");
  }

  {
    report.section(
        "asymmetry of the two wells (beta = 6, n = 24): deep -> shallow vs "
        "shallow -> deep");
    const int n = 24;
    ReportTable& table =
        report.table({"delta1/delta0", "E[1 -> 0] (shallow to deep)",
                      "E[0 -> n] (deep to shallow)"});
    const double d0 = 1.0 / double(n - 1);
    for (double ratio : opts.smoke ? std::vector<double>{1.0}
                                   : std::vector<double>{0.5, 0.75, 1.0}) {
      const double d1 = ratio * d0;
      const BirthDeathChain bd = BirthDeathChain::weight_chain(
          n, 6.0, clique_weight_potential(n, d0, d1));
      table.row()
          .cell(ratio, 2)
          .cell_sci(birth_death_hitting_time(bd, n, 0))
          .cell_sci(birth_death_hitting_time(bd, 0, n));
    }
    table.print();
    report.note("here the notions split: E[0 -> n] exceeds t_mix by up to "
                "e^{beta*(depth difference)} — a chain can be fully mixed "
                "long before it ever visits the minority equilibrium "
                "(pi(1) is exponentially small), which is why the paper "
                "tracks distributions, not single profiles. At delta0 = "
                "delta1 the wells equalize: Theorem 5.5's worst case.");
  }
}

}  // namespace

void register_hitting_vs_mixing(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "graphical_coordination";
  spec.n = 16;
  spec.params.set("delta0", 1.5 / 15.0).set("delta1", 1.0 / 15.0);
  Json topo = Json::object();
  topo.set("kind", "clique");
  spec.topology = std::move(topo);
  reg.add({"hitting_vs_mixing",
           "EXT: hitting time (Montanari-Saberi's metric) vs mixing time",
           "clique coordination, exact lumped chains: E[hit dominant eq.] "
           "vs t_mix(1/4)",
           spec, run});
}

}  // namespace logitdyn::scenario
