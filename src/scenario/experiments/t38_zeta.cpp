// Experiment E6 — Theorems 3.8/3.9: for large beta, t_mix = e^{beta*zeta
// (1 +- o(1))} where zeta is the min-max potential climb — NOT the global
// variation DeltaPhi. Port of bench/exp_t38_zeta; stdout unchanged on
// defaults.
#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/bounds.hpp"
#include "analysis/zeta.hpp"
#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "core/lumped.hpp"
#include "games/graphical_coordination.hpp"
#include "graph/builders.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E6: zeta (not DeltaPhi) governs large-beta mixing (Thms 3.8/3.9)",
      "claim: log t_mix / beta -> zeta = min-max potential climb");

  const double d0 = spec.params.at("delta0").as_double();
  const double d1 = spec.params.at("delta1").as_double();

  {
    const int n = spec.n;
    std::ostringstream title;
    title << "asymmetric clique n = " << n << ", delta0 = " << d0
          << ", delta1 = " << d1 << " (lumped)";
    report.section(title.str());
    const std::vector<double> wphi = clique_weight_potential(n, d0, d1);
    const double zeta = max_climb_on_path(wphi);
    const double dphi =
        *std::max_element(wphi.begin(), wphi.end()) -
        *std::min_element(wphi.begin(), wphi.end());
    report.note("zeta = " + format_double(zeta, 3) +
                "   DeltaPhi = " + format_double(dphi, 3));
    ReportTable& table = report.table(
        {"beta", "t_mix (exact)", "e^{beta*zeta}", "e^{beta*DPhi}"});
    std::vector<double> betas, times;
    const std::vector<double> grid = opts.betas_or(
        opts.smoke ? std::vector<double>{1.0, 2.0, 3.0}
                   : std::vector<double>{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0});
    for (double beta : grid) {
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const MixingResult mix = harness::exact_tmix(bd);
      table.row()
          .cell(beta, 2)
          .cell(harness::tmix_cell(mix))
          .cell_sci(std::exp(beta * zeta))
          .cell_sci(std::exp(beta * dphi));
      if (mix.converged && beta >= 2.0) {
        betas.push_back(beta);
        times.push_back(double(mix.time));
      }
    }
    table.print();
    if (betas.size() >= 2) {
      const LineFit fit = harness::rate_fit(betas, times);
      report.record_fit("tmix_beta_rate", fit, zeta);
      report.note("fitted rate = " + format_double(fit.slope, 3) +
                  "   zeta = " + format_double(zeta, 3) +
                  "   DeltaPhi = " + format_double(dphi, 3) +
                  "   (the fit must sit near zeta, far below DeltaPhi)");
    }
  }

  {
    report.section(
        "full-chain zeta via union-find matches lumped path formula (n=6)");
    const int n = 6;
    GraphicalCoordinationGame game(make_clique(uint32_t(n)),
                                   CoordinationPayoffs::from_deltas(d0, d1));
    const std::vector<double> phi = potential_table(game);
    const double zeta_full = max_potential_climb(game.space(), phi);
    const double zeta_lumped =
        max_climb_on_path(clique_weight_potential(n, d0, d1));
    ReportTable& table = report.table({"method", "zeta"});
    table.row().cell("union-find on 2^6 profiles").cell(zeta_full, 6);
    table.row().cell("1-D weight potential").cell(zeta_lumped, 6);
    table.print();
  }

  {
    report.section(
        "Theorem 3.8 upper / 3.9 lower bracket the exact t_mix (full chain, "
        "n = 5)");
    const int n = 5;
    const double b0 = 1.0, b1 = 0.5;
    GraphicalCoordinationGame game(make_clique(uint32_t(n)),
                                   CoordinationPayoffs::from_deltas(b0, b1));
    const std::vector<double> phi = potential_table(game);
    const double zeta = max_potential_climb(game.space(), phi);
    ReportTable& table = report.table(
        {"beta", "t_mix", "thm 3.9 lower (|dR|=1)", "thm 3.8 upper"});
    for (double beta : opts.smoke ? std::vector<double>{1.0}
                                  : std::vector<double>{1.0, 2.0, 3.0}) {
      LogitChain chain(game, beta);
      const std::vector<double> pi = chain.stationary();
      const MixingResult mix = harness::exact_tmix(chain);
      const double pi_min = *std::min_element(pi.begin(), pi.end());
      table.row()
          .cell(beta, 2)
          .cell(harness::tmix_cell(mix))
          .cell_sci(bounds::thm39_tmix_lower(2, double(n), beta, zeta))
          .cell_sci(bounds::thm38_tmix_upper(n, 2, beta, zeta, pi_min));
    }
    table.print();
    report.note("zeta = " + format_double(zeta, 3));
  }
}

}  // namespace

void register_t38_zeta(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "graphical_coordination";
  spec.n = 12;
  spec.params.set("delta0", 0.5).set("delta1", 0.25);
  Json topo = Json::object();
  topo.set("kind", "clique");
  spec.topology = std::move(topo);
  reg.add({"t38_zeta",
           "E6: zeta (not DeltaPhi) governs large-beta mixing (Thms 3.8/3.9)",
           "log t_mix / beta -> zeta = min-max potential climb",
           spec, run});
}

}  // namespace logitdyn::scenario
