// Extension experiment — the paper's conclusions raise the *synchronous*
// variant ("players are allowed to update their strategies
// simultaneously"; beta = infinity is Nisan–Schapira–Zohar's parallel
// best response). Port of bench/exp_parallel_dynamics; stdout unchanged
// on defaults.
#include <algorithm>
#include <cmath>

#include "analysis/mixing.hpp"
#include "analysis/tv.hpp"
#include "core/chain.hpp"
#include "core/parallel_dynamics.hpp"
#include "games/coordination.hpp"
#include "games/graphical_coordination.hpp"
#include "games/plateau.hpp"
#include "graph/builders.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "EXT: synchronous (parallel) logit dynamics",
      "the future-work variant from the paper's conclusions, against the "
      "asynchronous chain");

  const CoordinationPayoffs pay = CoordinationPayoffs::from_deltas(
      spec.params.at("delta0").as_double(),
      spec.params.at("delta1").as_double());

  {
    report.section(
        "stationary laws: TV(pi_sync, Gibbs) on coordination games");
    ReportTable& table =
        report.table({"game", "beta", "TV(pi_sync, pi_async)"});
    for (double beta : opts.betas_or(
             opts.smoke ? std::vector<double>{0.5, 2.0}
                        : std::vector<double>{0.5, 1.0, 2.0, 4.0})) {
      CoordinationGame game(pay);
      ParallelLogitChain par(game, beta);
      LogitChain seq(game, beta);
      table.row()
          .cell("coordination-2x2")
          .cell(beta, 2)
          .cell(total_variation(par.stationary(), seq.stationary()), 4);
    }
    for (double beta : opts.smoke ? std::vector<double>{0.5}
                                  : std::vector<double>{0.5, 1.5}) {
      GraphicalCoordinationGame game(
          make_ring(5), CoordinationPayoffs::from_deltas(1.0, 1.0));
      ParallelLogitChain par(game, beta);
      LogitChain seq(game, beta);
      table.row()
          .cell("ring(5)")
          .cell(beta, 2)
          .cell(total_variation(par.stationary(), seq.stationary()), 4);
    }
    table.print();
    report.note("nonzero TV at every beta: the synchronous chain does NOT "
                "converge to the Gibbs measure (paper conclusions: no "
                "simple closed form).");
  }

  {
    report.section(
        "flip-flop onset: round-2 return probability from (0,1)");
    CoordinationGame game(CoordinationPayoffs::from_deltas(2.0, 2.0));
    const ProfileSpace& sp = game.space();
    const size_t s01 = sp.index({0, 1});
    ReportTable& table =
        report.table({"beta", "P^2((0,1) -> (0,1))", "P((0,1) -> (1,0))"});
    for (double beta : opts.smoke
                           ? std::vector<double>{0.5, 8.0}
                           : std::vector<double>{0.5, 1.0, 2.0, 4.0, 8.0}) {
      ParallelLogitChain chain(game, beta);
      const DenseMatrix p = chain.dense_transition();
      const DenseMatrix p2 = matrix_power(p, 2);
      table.row()
          .cell(beta, 1)
          .cell(p2(s01, s01), 4)
          .cell(p(s01, sp.index({1, 0})), 4);
    }
    table.print();
    report.note("simultaneous best responses chase each other: the "
                "synchronous chain nearly 2-cycles at large beta.");
  }

  {
    report.section(
        "matched-work mixing: async t_mix / n vs sync t_mix (rounds)");
    ReportTable& table =
        report.table({"game", "beta", "async t_mix/n", "sync t_mix (rounds)"});
    // Both chains built once; the beta sweep mutates them in place.
    PlateauGame game(6, 3.0, 1.0);
    LogitChain seq(game, 0.0);
    ParallelLogitChain par(game, 0.0);
    for (double beta : opts.smoke ? std::vector<double>{1.5}
                                  : std::vector<double>{0.5, 1.5, 2.5}) {
      seq.set_beta(beta);
      par.set_beta(beta);
      const MixingResult a = harness::exact_tmix(seq);
      const MixingResult b = mixing_time_doubling(par.dense_transition(),
                                                  par.stationary(), 0.25);
      table.row()
          .cell("plateau n=6 g=3")
          .cell(beta, 2)
          .cell(double(a.time) / 6.0, 2)
          .cell(harness::tmix_cell(b));
    }
    table.print();
  }

  if (opts.smoke) return;

  {
    report.section(
        "CSR synchronous kernel: drop_tol sparsification at large beta");
    // The exact synchronous kernel has fully dense rows, which is why
    // this bench used to densify even on large spaces. At large beta
    // almost all of each row's mass sits on the per-player best
    // responses, so a drop tolerance makes the kernel genuinely sparse
    // with a quantified row-sum defect.
    PlateauGame game(10, 5.0, 1.0);  // 1024 states
    const size_t total = game.space().num_profiles();
    ParallelLogitChain chain(game, 0.0);
    ReportTable& table =
        report.table({"beta", "nnz (tol 1e-12)", "fill %",
                      "max row-sum defect"});
    for (double beta : {0.5, 2.0, 8.0}) {
      chain.set_beta(beta);
      const CsrMatrix csr = chain.csr_transition(1e-12);
      double defect = 0.0;
      for (double s : csr.row_sums()) {
        defect = std::max(defect, std::abs(1.0 - s));
      }
      table.row()
          .cell(beta, 1)
          .cell(int64_t(csr.nnz()))
          .cell(100.0 * double(csr.nnz()) / double(total * total), 2)
          .cell_sci(defect);
    }
    table.print();
    report.note("dropped mass stays below |S| * tol per row; the sparse "
                "kernel feeds single-start distribution evolution far "
                "beyond dense-matrix sizes.");
  }
}

}  // namespace

void register_parallel_dynamics(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "coordination";
  spec.n = 2;
  spec.params.set("delta0", 3.0).set("delta1", 1.0);
  reg.add({"parallel_dynamics", "EXT: synchronous (parallel) logit dynamics",
           "the future-work variant from the paper's conclusions, against "
           "the asynchronous chain",
           spec, run});
}

}  // namespace logitdyn::scenario
