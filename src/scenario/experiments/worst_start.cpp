// "worst_start" — certified worst-start mixing at operator scale
// (DESIGN.md §11): evolve EVERY delta start through the matrix-free
// kernel in compacted blocks and report the exact d(t) envelope, next to
// the Theorem 2.3 bracket and the two-extreme-start lower bound that
// were the best the operator path could say before the fast-apply
// engine. Runs on the t55/t56 instance shapes (clique and ring graphical
// coordination), plus a synchronous-kernel section routed through
// sparsified csr(drop_tol) applies with the quantified defect bound.
#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "analysis/mixing.hpp"
#include "analysis/spectral.hpp"
#include "core/chain.hpp"
#include "core/logit_operator.hpp"
#include "core/parallel_dynamics.hpp"
#include "scenario/experiments.hpp"
#include "support/error.hpp"

namespace logitdyn::scenario {
namespace {

/// One instance's rows: certified envelope vs the pre-engine answers.
void envelope_rows(const PotentialGame& game, ReportTable& table,
                   std::span<const double> betas, uint64_t step_cap,
                   Report& report, const std::string& label) {
  LogitChain chain(game, 0.0);
  const size_t total = game.space().num_profiles();
  for (double beta : betas) {
    chain.set_beta(beta);
    const std::vector<double> pi = chain.stationary();
    const LogitOperator op(game, beta, UpdateKind::kAsynchronous);
    const WorstStartCertificate cert =
        certify_worst_start(op, pi, 0.25, step_cap);

    // The pre-engine story: Theorem 2.3 bracket from Lanczos t_rel plus
    // the evolved lower bound from the two extreme profiles.
    SpectralOptions sopts;
    const SpectralSummary spec_summary = spectral_summary(
        game, beta, UpdateKind::kAsynchronous, pi, sopts);
    const size_t extremes[] = {0, total - 1};
    const OperatorMixingResult lower =
        mixing_time_operator(op, pi, extremes, 0.25, step_cap);

    auto& row = table.row();
    row.cell(label).cell(beta, 2);
    row.cell(cert.worst.converged ? std::to_string(cert.worst.time)
                                  : "> budget");
    row.cell(int64_t(game.space().count_playing(cert.worst_start, 1)));
    row.cell(cert.worst.distance, 4);
    row.cell(lower.worst.converged ? std::to_string(lower.worst.time)
                                   : "> budget");
    if (spec_summary.converged) {
      const double pi_min = *std::min_element(pi.begin(), pi.end());
      const Theorem23Bracket bracket = tmix_bracket_from_relaxation(
          spec_summary.relaxation_time(), pi_min, 0.25);
      row.cell("[" + format_double(bracket.lower, 1) + ", " +
               format_double(bracket.upper, 1) + "]");
    } else {
      row.cell("n/a (lanczos unconverged)");
    }
    const double compaction =
        cert.vector_steps > 0
            ? double(cert.dense_steps) / double(cert.vector_steps)
            : 0.0;
    row.cell(compaction, 2);
    std::ostringstream env;
    env << label << " beta=" << beta << ": d(t) envelope over " << total
        << " starts, d(1)=" << (cert.envelope.size() > 1 ? cert.envelope[1]
                                                         : cert.envelope[0])
        << ", crossed 1/4 at t=" << cert.worst.time << " (d(t-1)="
        << cert.worst.distance_prev << ")";
    report.note(env.str());
  }
}

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "worst_start: certified d(t) envelopes at operator scale",
      "exact worst-case t_mix from blocked full-space TV evolution vs "
      "the Theorem 2.3 bracket the operator path used to report");

  const std::unique_ptr<PotentialGame> clique =
      GameRegistry::instance().make_potential_game(spec);
  const uint64_t step_cap = opts.smoke ? (uint64_t(1) << 12)
                                       : (uint64_t(1) << 16);
  const std::vector<double> betas =
      opts.betas_or(opts.smoke ? std::vector<double>{1.5}
                               : std::vector<double>{1.0, 2.0});

  report.section(
      "certified worst start vs Theorem 2.3 bracket (async kernel)");
  ReportTable& table = report.table(
      {"instance", "beta", "t_mix certified", "worst start w(x)",
       "d(t_mix)", "2-extreme lower", "Thm 2.3 bracket", "compaction x"});
  envelope_rows(*clique, table, betas, step_cap, report, "clique");
  if (!opts.smoke) {
    // The t56 shape: same n and deltas on the ring.
    ScenarioSpec ring_spec = spec;
    Json topo = Json::object();
    topo.set("kind", "ring");
    ring_spec.topology = std::move(topo);
    const std::unique_ptr<PotentialGame> ring =
        GameRegistry::instance().make_potential_game(ring_spec);
    envelope_rows(*ring, table, betas, step_cap, report, "ring");
  }
  table.print();
  report.note(
      "compaction x = |S| * t_mix / vector-steps actually evolved: "
      "metastable wells converge early and leave only the barrier "
      "stragglers in the batch.");

  if (!opts.smoke) {
    report.section(
        "synchronous kernel through sparsified csr(drop_tol) applies");
    // The exact synchronous apply is O(|S|^2 n); a drop_tol build makes
    // the envelope affordable and the dropped mass bounds the TV error.
    // The largest beta of the grid: that is where the product kernel's
    // rows concentrate and sparsification actually drops mass.
    const double drop_tol = 1e-8;
    const ParallelLogitChain sync_chain(*clique, betas.back());
    const CsrMatrix sparse = sync_chain.csr_transition(drop_tol);
    double defect = 0.0;
    for (double s : sparse.row_sums()) {
      defect = std::max(defect, std::abs(1.0 - s));
    }
    const std::vector<double> sync_pi = sync_chain.stationary();
    const CsrOperator sync_op(sparse);
    const WorstStartCertificate cert = certify_worst_start(
        sync_op, sync_pi, 0.25, step_cap, /*batch=*/64, defect);
    ReportTable& sync_table = report.table(
        {"beta", "drop_tol", "nnz/|S|^2", "row defect", "t_mix certified",
         "d(t_mix)", "TV defect bound"});
    const size_t total = clique->space().num_profiles();
    sync_table.row()
        .cell(betas.back(), 2)
        .cell(drop_tol, 12)
        .cell(double(sparse.nnz()) / double(total * total), 4)
        .cell(defect, 12)
        .cell(cert.worst.converged ? std::to_string(cert.worst.time)
                                   : "> budget")
        .cell(cert.worst.distance, 4)
        .cell(cert.tv_defect_bound, 12);
    sync_table.print();
    report.note(
        "|d_sparse(t) - d_exact(t)| <= t * defect / 2: the certified "
        "crossing is exact up to the reported TV defect bound.");
  }
}

}  // namespace

void register_worst_start(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "graphical_coordination";
  spec.n = 10;
  spec.params.set("delta0", 1.2 / 9.0).set("delta1", 0.8 / 9.0);
  Json topo = Json::object();
  topo.set("kind", "clique");
  spec.topology = std::move(topo);
  reg.add({"worst_start",
           "certified worst-start d(t) envelopes at operator scale",
           "exact worst-case t_mix from blocked full-space TV evolution "
           "(fast-apply engine) vs the Theorem 2.3 bracket",
           spec, run});
}

}  // namespace logitdyn::scenario
