// Experiment E1/E2 — Theorem 3.1 and Lemma 3.2 (port of the former
// bench/exp_t31_eigenvalues main; stdout is unchanged on the default
// scenario/options).
//
// T3.1: the transition matrix of the logit dynamics of any potential game
// has a non-negative spectrum, so lambda* = lambda_2 and
// t_rel = 1/(1 - lambda_2).
// L3.2: at beta = 0 the relaxation time is at most n (and equals n).
#include <cmath>

#include "analysis/spectral.hpp"
#include "core/chain.hpp"
#include "games/graphical_coordination.hpp"
#include "games/random_potential.hpp"
#include "graph/builders.hpp"
#include "rng/rng.hpp"
#include "scenario/experiments.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E1: Spectrum of potential-game logit dynamics (Theorem 3.1)",
      "claim: all eigenvalues >= 0, hence lambda2 = lambda* and "
      "t_rel = 1/(1-lambda2)");

  const double range = spec.params.at("range").as_double();
  const uint64_t seed = opts.seed_or(20110604);  // SPAA'11 conference date
  report.record_seed("random_potential", seed);
  Rng rng(seed);
  ReportTable& t31 = report.table({"game", "n", "m", "beta", "lambda_min",
                                   "lambda_2", "spectrum>=0", "t_rel"});
  struct Case {
    int n, m;
    double beta;
  };
  const std::vector<Case> all_cases = {{2, 2, 0.5}, {2, 3, 1.0}, {3, 2, 2.0},
                                       {3, 3, 1.0}, {4, 2, 1.5}, {2, 4, 3.0},
                                       {5, 2, 0.7}, {4, 3, 0.4}};
  const std::vector<Case> cases(
      all_cases.begin(),
      opts.smoke ? all_cases.begin() + 3 : all_cases.end());
  bool all_nonneg = true;
  for (const Case& c : cases) {
    const TablePotentialGame game =
        make_random_potential_game(ProfileSpace(c.n, c.m), range, rng);
    LogitChain chain(game, c.beta);
    const ChainSpectrum s =
        chain_spectrum(chain.dense_transition(), chain.stationary());
    const bool nonneg = s.eigenvalues.front() >= -1e-9;
    all_nonneg = all_nonneg && nonneg;
    t31.row()
        .cell("random-potential")
        .cell(c.n)
        .cell(c.m)
        .cell(c.beta, 2)
        .cell(s.eigenvalues.front(), 6)
        .cell(s.lambda2(), 6)
        .cell(nonneg ? "yes" : "NO")
        .cell(s.relaxation_time(), 3);
  }
  // Structured games too.
  for (double beta : opts.betas_or(opts.smoke
                                       ? std::vector<double>{0.5}
                                       : std::vector<double>{0.5, 2.0})) {
    GraphicalCoordinationGame game(make_ring(5),
                                   CoordinationPayoffs::from_deltas(1.0, 1.0));
    LogitChain chain(game, beta);
    const ChainSpectrum s =
        chain_spectrum(chain.dense_transition(), chain.stationary());
    t31.row()
        .cell("ring-coordination")
        .cell(5)
        .cell(2)
        .cell(beta, 2)
        .cell(s.eigenvalues.front(), 6)
        .cell(s.lambda2(), 6)
        .cell(s.eigenvalues.front() >= -1e-9 ? "yes" : "NO")
        .cell(s.relaxation_time(), 3);
  }
  t31.print();
  report.record_value("all_spectra_nonnegative", Json(all_nonneg));
  report.note(std::string("Theorem 3.1 verdict: ") +
              (all_nonneg ? "all spectra non-negative (as predicted)"
                          : "VIOLATION FOUND"));

  report.section(
      "E2: relaxation time at beta = 0 vs Lemma 3.2 bound (t_rel <= n)");
  ReportTable& t32 =
      report.table({"game", "n", "t_rel(beta=0)", "bound n", "holds"});
  for (int n : opts.smoke ? std::vector<int>{2, 3}
                          : std::vector<int>{2, 3, 4, 5, 6, 7}) {
    const TablePotentialGame game =
        make_random_potential_game(ProfileSpace(n, 2), 3.0, rng);
    LogitChain chain(game, 0.0);
    const ChainSpectrum s =
        chain_spectrum(chain.dense_transition(), chain.stationary());
    t32.row()
        .cell("random-potential")
        .cell(n)
        .cell(s.relaxation_time(), 4)
        .cell(n)
        .cell(s.relaxation_time() <= n + 1e-6 ? "yes" : "NO");
  }
  t32.print();

  if (opts.smoke) return;  // the 16384-state Lanczos run is not smoke-sized

  report.section(
      "E1c: Theorem 3.1 at operator scale — Lanczos on the matrix-free "
      "LogitOperator (no materialized P)");
  // n = 10 sits below the dense cutover so both paths run and must agree
  // on lambda_2 to 1e-8; n = 14 (16384 states) is operator-only.
  ReportTable& t31c =
      report.table({"n", "states", "via", "lambda_min", "lambda_2", "t_rel",
                    "iters", "|d lambda_2| vs dense"});
  bool op_nonneg = true;
  for (int n : {10, 14}) {
    const TablePotentialGame game =
        make_random_potential_game(ProfileSpace(n, 2), range, rng);
    LogitChain chain(game, 1.0);
    const std::vector<double> pi = chain.stationary();
    SpectralOptions force_op;
    force_op.dense_cutover = 1;  // always exercise the operator path here
    force_op.lanczos.tol = 1e-10;
    const SpectralSummary op_sum = spectral_summary(
        game, 1.0, UpdateKind::kAsynchronous, pi, force_op);
    std::string agree = "n/a (operator only)";
    if (game.space().num_profiles() < kDenseSpectralCutover) {
      const ChainSpectrum dense =
          chain_spectrum(chain.dense_transition(), pi);
      agree = format_double(std::abs(dense.lambda2() - op_sum.lambda2), 12);
    }
    t31c.row()
        .cell(n)
        .cell(int64_t(game.space().num_profiles()))
        .cell(op_sum.via_operator ? "lanczos" : "dense")
        .cell(op_sum.lambda_min, 8)
        .cell(op_sum.lambda2, 8)
        .cell(op_sum.relaxation_time(), 3)
        .cell(int64_t(op_sum.lanczos_iterations))
        .cell(agree);
    op_nonneg = op_nonneg && op_sum.lambda_min >= -1e-8;
  }
  t31c.print();
  report.record_value("operator_spectra_nonnegative", Json(op_nonneg));
  report.note(std::string("operator-path verdict: ") +
              (op_nonneg ? "spectra non-negative at every size"
                         : "VIOLATION FOUND"));
}

}  // namespace

void register_t31_eigenvalues(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "random_potential";
  spec.n = 4;
  spec.params.set("strategies", 2).set("range", 2.0);
  reg.add({"t31_eigenvalues",
           "E1: Spectrum of potential-game logit dynamics (Theorem 3.1)",
           "all eigenvalues >= 0, hence lambda2 = lambda* and "
           "t_rel = 1/(1-lambda2); t_rel(beta=0) <= n (Lemma 3.2)",
           spec, run});
}

}  // namespace logitdyn::scenario
