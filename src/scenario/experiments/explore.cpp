// "explore" — the scenario-driven descendant of the mixing_explorer
// example: one scenario spec + a beta grid in, the chain's spectrum
// summary, mixing time, and every applicable paper bound out. Below the
// 2^12-state dense cutover everything is exact; above it the operator
// path (DESIGN.md §9, fast-apply engine §11) takes over up to 2^22
// states. The mixing_explorer binary is now a thin shim over this
// experiment (stdout unchanged).
#include <algorithm>
#include <memory>
#include <sstream>

#include "analysis/bounds.hpp"
#include "analysis/mixing.hpp"
#include "analysis/potential_stats.hpp"
#include "analysis/spectral.hpp"
#include "analysis/zeta.hpp"
#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "core/logit_operator.hpp"
#include "scenario/artifacts.hpp"
#include "scenario/experiments.hpp"
#include "support/error.hpp"
#include "support/fault_injection.hpp"
#include "support/run_control.hpp"

namespace logitdyn::scenario {
namespace {

/// Size heuristic for folding the certified worst-start envelope into the
/// operator path: all-|S|-starts evolution costs |S| vectors before
/// compaction, which stays interactive up to 2^14 states; beyond that the
/// dedicated `worst_start` experiment (with its own budget knobs) owns it.
inline constexpr size_t kExploreCertifyCeiling = size_t(1) << 14;
/// Step budget for the folded-in certificate — modest on purpose: at the
/// ceiling size a metastable chain would otherwise dominate the explore
/// run; "> budget" plus the Thm 2.3 bracket is the honest answer there.
inline constexpr uint64_t kExploreCertifySteps = uint64_t(1) << 14;

/// Dense-path build product worth sharing across requests (DESIGN.md
/// §15): the transition matrix plus its exact spectrum, both functions
/// of (validated spec, beta) alone.
struct DenseExplore {
  DenseMatrix p;
  double lambda2 = 0.0;
  double lambda_min = 0.0;
};

/// The short workload label the explorer has always printed: the topology
/// kind for graph games ("ring", "clique", ...), the family otherwise.
std::string explore_label(const ScenarioSpec& spec) {
  if (spec.family == "graphical_coordination" && spec.topology.is_object()) {
    return spec.topology.at("kind").as_string();
  }
  return spec.family;
}

void explore_beta(const ScenarioSpec& spec, const RunOptions& opts,
                  Report& report, LogitChain& chain,
                  const PotentialStats& stats, double zeta,
                  const std::string& label, int n, double beta,
                  const std::string& key_base) {
  RunControl* control = opts.control;
  ArtifactCacheBase* cache = opts.artifacts;
  // Publication gate (§15): artifacts from a run that is degraded (e.g.
  // the fast_exp fallback changed the numbers) or interrupted must not
  // outlive their own request. Evaluated AFTER each build.
  const auto publishable = [&report, control] {
    return report.run_status() == RunStatus::kCompleted &&
           (control == nullptr || !control->interrupted());
  };
  const std::string beta_key =
      key_base + "|beta=" + json_number_to_string(beta, /*is_int=*/false);

  std::ostringstream heading;
  heading << label << ", n = " << n << ", beta = " << beta;
  report.section(heading.str(), /*print_banner=*/false);
  report.note("\n### " + heading.str() + " ###");
  chain.set_beta(beta);
  const std::shared_ptr<const std::vector<double>> pi_ptr =
      cached_artifact<std::vector<double>>(
          cache, beta_key + "|pi",
          [&] {
            return std::make_shared<std::vector<double>>(chain.stationary());
          },
          [](const std::vector<double>& v) {
            return v.size() * sizeof(double);
          },
          publishable);
  const std::vector<double>& pi = *pi_ptr;
  const bool dense_path = pi.size() < kDenseSpectralCutover;

  // Dense path: one matrix build serves spectrum and doubling; operator
  // path: Lanczos + evolution, nothing materialized.
  SpectralSummary spec_summary;
  MixingResult dense_mix;
  if (dense_path) {
    const std::shared_ptr<const DenseExplore> dense =
        cached_artifact<DenseExplore>(
            cache, beta_key + "|dense",
            [&] {
              auto d = std::make_shared<DenseExplore>();
              d->p = chain.dense_transition();
              const ChainSpectrum cs = chain_spectrum(d->p, pi);
              d->lambda2 = cs.lambda2();
              d->lambda_min = cs.lambda_min();
              return d;
            },
            [](const DenseExplore& d) {
              return d.p.rows() * d.p.cols() * sizeof(double);
            },
            publishable);
    spec_summary.lambda2 = dense->lambda2;
    spec_summary.lambda_min = dense->lambda_min;
    spec_summary.certified = true;
    // The doubling ladder is deterministic in (spec, beta) — its budget
    // is a compile-time constant — so the certified result is cacheable
    // alongside the matrix it was derived from.
    dense_mix = *cached_artifact<MixingResult>(
        cache, beta_key + "|dense_mix",
        [&] {
          return std::make_shared<MixingResult>(mixing_time_doubling(
              dense->p, pi, 0.25, uint64_t(1) << 34, control));
        },
        [](const MixingResult&) { return sizeof(MixingResult); },
        publishable);
    if (control != nullptr && dense_mix.converged) {
      control->note_certified("t_mix_beta_" + format_double(beta, 3),
                              double(dense_mix.time));
    }
  } else {
    spec_summary = *cached_artifact<SpectralSummary>(
        cache, beta_key + "|spectrum",
        [&] {
          SpectralOptions sopts;
          sopts.lanczos.control = control;
          return std::make_shared<SpectralSummary>(spectral_summary(
              chain.game(), beta, UpdateKind::kAsynchronous, pi, sopts));
        },
        [](const SpectralSummary&) { return sizeof(SpectralSummary); },
        publishable);
    if (control != nullptr && spec_summary.converged) {
      control->note_certified("lambda2_beta_" + format_double(beta, 3),
                              spec_summary.lambda2);
    }
  }

  ReportTable& out = report.table({"quantity", "value"});
  out.row().cell("|S|").cell(int64_t(pi.size()));
  out.row().cell("spectral path").cell(
      dense_path ? "dense (exact)" : "lanczos on LogitOperator");
  out.row().cell("DeltaPhi (global variation)").cell(stats.global_variation, 4);
  out.row().cell("deltaPhi (local variation)").cell(stats.local_variation, 4);
  out.row().cell("zeta (min-max climb)").cell(zeta, 4);
  out.row().cell("lambda_2").cell(spec_summary.lambda2, 6);
  out.row().cell("lambda_min").cell(spec_summary.lambda_min, 6);
  out.row().cell("relaxation time").cell(
      format_double(spec_summary.relaxation_time(), 3) +
      (spec_summary.converged ? "" : " (lanczos UNCONVERGED)"));
  if (dense_path) {
    out.row().cell("t_mix(1/4) exact").cell(
        dense_mix.converged ? std::to_string(dense_mix.time) : "> budget");
  } else {
    // Operator scale: Theorem 2.3 bracket plus the evolved lower bound
    // from the two extreme profiles. Each apply is O(|S|) oracle work
    // (seconds at 2^22 states on the vectorized kernel), so the step
    // budget shrinks with size — metastable runs print "> budget" and the
    // bracket still localizes t_mix.
    const LogitOperator op(chain.game(), beta, UpdateKind::kAsynchronous);
    const size_t starts[] = {0, pi.size() - 1};
    const uint64_t step_cap =
        pi.size() >= (size_t(1) << 16) ? (1 << 16) : (1 << 20);

    // Cutover heuristic (DESIGN.md §12): with a converged Ritz interval,
    // probe the step-budget horizon — if a Chebyshev probe there costs
    // under half the stepwise applies, the filtered driver takes over
    // (exact stepwise warmup still resolves fast chains inside it).
    SpectralInterval interval;
    bool use_filter = false;
    bool ritz_certified = spec_summary.converged && spec_summary.certified;
    // Degradation ladder (DESIGN.md §14): a failed Ritz certification —
    // injected here via the cheb_uncertified fault point, organically via
    // converged/certified above — drops the filter and keeps the certified
    // stepwise path, with the report marked degraded.
    if (ritz_certified && fault::should_fire(fault::Point::kChebUncertified)) {
      ritz_certified = false;
      report.set_run_status(
          RunStatus::kDegraded,
          "chebyshev spectral certification failed — certified stepwise "
          "evolution at beta " + format_double(beta, 3));
    }
    if (ritz_certified) {
      LanczosSpectrum ritz;
      ritz.lambda2 = spec_summary.lambda2;
      ritz.lambda_min = spec_summary.lambda_min;
      ritz.residual = spec_summary.residual;
      interval = deviation_interval(ritz);
      use_filter = chebyshev_profitable(step_cap, interval, 1e-6,
                                        /*cutover=*/0.5, size_t(1) << 15);
    }
    if (use_filter) {
      FilteredMixingOptions fopts;
      fopts.control = control;
      const FilteredMixingResult mix = mixing_time_filtered(
          op, pi, starts, interval, 0.25, step_cap, fopts);
      if (control != nullptr && mix.worst.converged) {
        control->note_certified("t_mix_beta_" + format_double(beta, 3),
                                double(mix.worst.time));
      }
      out.row().cell("t_mix from extreme states").cell(
          (mix.worst.converged ? std::to_string(mix.worst.time)
                               : std::string("> budget")) +
          (mix.used_chebyshev ? " (chebyshev filtered)" : ""));
      if (mix.used_chebyshev) {
        out.row().cell("filter degree / defect bound").cell(
            std::to_string(mix.max_degree_used) + " / " +
            format_sci(mix.tv_defect_bound));
      }
    } else {
      const OperatorMixingResult mix =
          mixing_time_operator(op, pi, starts, 0.25, step_cap, control);
      out.row().cell("t_mix from extreme states").cell(
          mix.worst.converged ? std::to_string(mix.worst.time) : "> budget");
      if (control != nullptr && mix.worst.converged) {
        control->note_certified("t_mix_beta_" + format_double(beta, 3),
                                double(mix.worst.time));
      }
    }
    if (spec_summary.converged) {
      const double pi_min_b = *std::min_element(pi.begin(), pi.end());
      const Theorem23Bracket bracket = tmix_bracket_from_relaxation(
          spec_summary.relaxation_time(), pi_min_b, 0.25);
      out.row().cell("Thm 2.3 bracket on t_mix").cell(
          "[" + format_double(bracket.lower, 1) + ", " +
          format_double(bracket.upper, 1) + "]");
    } else {
      // An unconverged Ritz estimate underestimates t_rel; a bracket
      // built from it could exclude the true t_mix, so don't print one.
      out.row().cell("Thm 2.3 bracket on t_mix").cell(
          "n/a (lanczos unconverged)");
    }
    // Certified worst-start envelope, folded in behind a size heuristic
    // (above the ceiling it remains the dedicated `worst_start`
    // experiment's job): ALL |S| delta starts evolved with compaction —
    // the exact d(t) envelope, not a two-start lower bound.
    if (pi.size() <= kExploreCertifyCeiling) {
      const WorstStartCertificate cert = *cached_artifact<WorstStartCertificate>(
          cache, beta_key + "|worst_start",
          [&] {
            return std::make_shared<WorstStartCertificate>(
                certify_worst_start(op, pi, 0.25, kExploreCertifySteps, 64,
                                    /*per_step_defect=*/0.0, control));
          },
          [](const WorstStartCertificate& c) {
            return sizeof(WorstStartCertificate) +
                   c.envelope.size() * sizeof(double);
          },
          publishable);
      out.row().cell("t_mix(1/4) certified worst-start").cell(
          cert.worst.converged ? std::to_string(cert.worst.time)
                               : "> budget");
      if (cert.worst.converged) {
        const double dense = double(cert.dense_steps);
        out.row().cell("worst start / compaction").cell(
            std::to_string(cert.worst_start) + " / " +
            format_double(cert.vector_steps > 0
                              ? dense / double(cert.vector_steps)
                              : 1.0,
                          2) +
            "x");
      }
    }
  }
  const int m = int(chain.space().max_strategies());
  out.row()
      .cell("Thm 3.4 upper")
      .cell(format_sci(bounds::thm34_tmix_upper(n, m, beta,
                                                stats.global_variation)));
  const double pi_min = *std::min_element(pi.begin(), pi.end());
  out.row()
      .cell("Thm 3.8 upper (zeta)")
      .cell(format_sci(bounds::thm38_tmix_upper(n, m, beta, zeta, pi_min)));
  if (bounds::thm36_applicable(beta, n, stats.local_variation)) {
    out.row().cell("Thm 3.6 upper (small beta)").cell(
        bounds::thm36_tmix_upper(n), 1);
  }
  if (label == "ring") {
    const double delta = spec.params.at("delta0").as_double();
    out.row().cell("Thm 5.6 upper (ring)").cell(
        format_sci(bounds::thm56_tmix_upper(n, beta, delta)));
    out.row().cell("Thm 5.7 lower (ring)").cell(
        bounds::thm57_tmix_lower(beta, delta), 2);
  }
  if (spec.family == "dominant") {
    const int ms = int(spec.params.at("strategies").as_int());
    out.row().cell("Thm 4.2 upper (beta-free)").cell(
        format_sci(bounds::thm42_tmix_upper(n, ms)));
    out.row().cell("Thm 4.3 lower").cell(
        bounds::thm43_tmix_lower(n, ms, beta), 2);
  }
  out.print();
}

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  const std::unique_ptr<PotentialGame> game =
      GameRegistry::instance().make_potential_game(spec);
  // Below the dense cutover the explorer is fully exact; above it the
  // operator path (Lanczos + multi-start evolution, DESIGN.md §9) takes
  // over, so the ceiling is memory for O(k) state-space vectors — the
  // fast-apply engine (§11) moved it from 2^20 to 2^22.
  if (game->space().num_profiles() > (size_t(1) << 22)) {
    throw Error("state space too large (use |S| <= 2^22)");
  }
  // One chain serves the whole beta sweep (beta is mutable on Dynamics),
  // and the beta-independent potential summaries are computed once.
  LogitChain chain(*game, 0.0);
  const std::vector<double> phi = potential_table(*game);
  const PotentialStats stats = potential_stats(game->space(), phi);
  const double zeta = max_potential_climb(game->space(), phi);
  const std::string label = explore_label(spec);
  const int n = game->num_players();
  // Cache key base: the spec reaching an experiment is already validated
  // (defaults filled), so its canonical hash is THE artifact-cache
  // identity for this game (DESIGN.md §15).
  const std::string key_base = "explore|" + spec.canonical_hash();
  for (double beta : opts.betas_or({1.0})) {
    // Per-beta cancellation point: an expired deadline stops BEFORE the
    // next section opens, so every emitted section is complete and the
    // partial document validates (DESIGN.md §14).
    if (opts.control != nullptr &&
        opts.control->poll("explore_beta") != RunStatus::kCompleted) {
      break;
    }
    explore_beta(spec, opts, report, chain, stats, zeta, label, n, beta,
                 key_base);
  }
}

}  // namespace

void register_explore(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "plateau";
  spec.n = 6;
  reg.add({"explore",
           "scenario explorer: spectrum, mixing time, and every applicable "
           "paper bound for one scenario across a beta grid",
           "exact below the 2^12 dense cutover, Lanczos + Theorem 2.3 "
           "bracket up to 2^22 states",
           spec, run});
}

}  // namespace logitdyn::scenario
