// Experiment E10 — Theorems 5.6/5.7: the ring mixes fast. Port of
// bench/exp_t56_ring; stdout unchanged on defaults.
//
// claim: Omega(1 + e^{2 delta beta}) <= t_mix <= O(e^{2 delta beta} n log
// n): the exponent is 2*delta — a *local* quantity — rather than the
// Theta(n^2 delta) barrier of the clique.
#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/spectral.hpp"
#include "core/chain.hpp"
#include "core/coupling.hpp"
#include "core/lumped.hpp"
#include "games/graphical_coordination.hpp"
#include "graph/builders.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E10: coordination on the ring (Theorems 5.6/5.7)",
      "claim: Omega(1+e^{2db}) <= t_mix <= O(e^{2db} n log n), rate = "
      "2*delta");

  const double delta = spec.params.at("delta0").as_double();

  {
    report.section("exact mixing on small rings (delta0 = delta1 = 1)");
    ReportTable& table =
        report.table({"n", "beta", "t_mix (exact)", "thm 5.7 lower",
                      "thm 5.6 upper"});
    std::vector<double> betas, times;
    const std::vector<double> grid = opts.betas_or(
        opts.smoke ? std::vector<double>{0.5, 1.0}
                   : std::vector<double>{0.5, 1.0, 1.5, 2.0, 2.5, 3.0});
    for (int n : opts.smoke ? std::vector<int>{6} : std::vector<int>{6, 8}) {
      for (double beta : grid) {
        GraphicalCoordinationGame game(
            make_ring(uint32_t(n)),
            CoordinationPayoffs::from_deltas(delta, delta));
        LogitChain chain(game, beta);
        const MixingResult mix = harness::exact_tmix(chain);
        table.row()
            .cell(n)
            .cell(beta, 2)
            .cell(harness::tmix_cell(mix))
            .cell(bounds::thm57_tmix_lower(beta, delta), 1)
            .cell(bounds::thm56_tmix_upper(n, beta, delta), 1);
        if (n == 8 && mix.converged && beta >= 1.5) {
          betas.push_back(beta);
          times.push_back(double(mix.time));
        }
      }
    }
    table.print();
    if (betas.size() >= 2) {
      const LineFit fit = harness::rate_fit(betas, times);
      report.record_fit("tmix_beta_rate_n8", fit, 2 * delta);
      report.note("fitted beta-rate at n = 8 (beta >= 1.5): " +
                  format_double(fit.slope, 3) +
                  "   (paper predicts 2*delta = " +
                  format_double(2 * delta, 1) + ")");
    }
  }

  if (opts.smoke) return;  // coupling estimates and Lanczos are not smoke-sized

  {
    report.section(
        "large rings: monotone grand-coupling estimator of t_mix(1/4)");
    const uint64_t seed = opts.seed_or(99);
    report.record_seed("large_ring_coupling", seed);
    // n is capped at 48: the profile-index codec needs |S| = 2^n to fit in
    // 62 bits (the simulation itself never enumerates the space).
    ReportTable& table =
        report.table({"n", "beta", "t_mix estimate", "est/(n log n)",
                      "thm 5.6 upper"});
    for (int n : {16, 24, 32, 48}) {
      const double beta = 1.0;
      GraphicalCoordinationGame game(
          make_ring(uint32_t(n)),
          CoordinationPayoffs::from_deltas(delta, delta));
      LogitChain chain(game, beta);
      const int64_t est = estimate_tmix_monotone(
          chain, /*replicas=*/48, 0.25,
          /*max_steps=*/int64_t(4e7), /*master_seed=*/seed);
      const double nlogn = double(n) * std::log(double(n));
      table.row()
          .cell(n)
          .cell(beta, 1)
          .cell(est)
          .cell(double(est) / nlogn, 3)
          .cell(bounds::thm56_tmix_upper(n, beta, delta), 1);
    }
    table.print();
    report.note("est/(n log n) stays bounded: the n log n scaling of "
                "Theorem 5.6.");
  }

  {
    report.section(
        "ring vs clique at the same n, beta: local beats global");
    const uint64_t seed = opts.seed_or(7);
    report.record_seed("ring_vs_clique_coupling", seed);
    // Same per-edge payoffs on both topologies; beta = 0.25 keeps the
    // clique's e^{Theta(n^2)beta} barrier just within exact reach.
    ReportTable& table =
        report.table({"n", "beta", "ring t_mix (coupling est.)",
                      "clique t_mix (exact, lumped)"});
    for (int n : {16, 24}) {
      const double beta = 0.25;
      GraphicalCoordinationGame ring_game(
          make_ring(uint32_t(n)),
          CoordinationPayoffs::from_deltas(delta, delta));
      const int64_t ring_est = estimate_tmix_monotone(
          LogitChain(ring_game, beta), 48, 0.25, int64_t(4e7), seed);
      const BirthDeathChain clique =
          BirthDeathChain::weight_chain(n, beta,
                                        clique_weight_potential(n, delta, delta));
      const MixingResult clique_mix =
          harness::exact_tmix(clique, uint64_t(1) << 56);
      table.row()
          .cell(n)
          .cell(beta, 2)
          .cell(ring_est)
          .cell(harness::tmix_cell(clique_mix));
    }
    table.print();
    report.note("the clique pays e^{Theta(n^2 delta) beta}; the ring pays "
                "e^{2 delta beta} n log n.");
  }

  {
    report.section(
        "operator scale: ring n = 14 (16384 states) — t_rel rate vs "
        "2*delta via Lanczos on the matrix-free kernel");
    // Theorem 5.6's exponent is local: log t_rel should grow like
    // 2*delta*beta even at sizes the dense spectrum cannot reach.
    GraphicalCoordinationGame game(
        make_ring(14), CoordinationPayoffs::from_deltas(delta, delta));
    LogitChain chain(game, 0.0);
    ReportTable& table =
        report.table({"beta", "spectral gap", "t_rel", "lanczos iters"});
    std::vector<double> betas, times;
    for (double beta : {1.0, 1.5, 2.0}) {
      chain.set_beta(beta);
      const std::vector<double> pi = chain.stationary();
      SpectralOptions sopts;  // 16384 states: operator path
      sopts.lanczos.tol = 1e-10;
      const SpectralSummary s =
          spectral_summary(game, beta, UpdateKind::kAsynchronous, pi, sopts);
      table.row()
          .cell(beta, 2)
          .cell(s.spectral_gap(), 8)
          .cell(s.relaxation_time(), 2)
          .cell(std::to_string(s.lanczos_iterations) +
                (s.converged ? "" : " (UNCONVERGED)"));
      betas.push_back(beta);
      times.push_back(s.relaxation_time());
    }
    table.print();
    const LineFit fit = harness::rate_fit(betas, times);
    report.record_fit("trel_beta_rate_ring14", fit, 2 * delta);
    report.note("fitted beta-rate of t_rel: " + format_double(fit.slope, 3) +
                "   (paper predicts 2*delta = " +
                format_double(2 * delta, 1) + ")");
  }
}

}  // namespace

void register_t56_ring(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "graphical_coordination";
  spec.n = 8;
  spec.params.set("delta0", 1.0).set("delta1", 1.0);
  Json topo = Json::object();
  topo.set("kind", "ring");
  spec.topology = std::move(topo);
  reg.add({"t56_ring", "E10: coordination on the ring (Theorems 5.6/5.7)",
           "Omega(1+e^{2db}) <= t_mix <= O(e^{2db} n log n), rate = 2*delta",
           spec, run});
}

}  // namespace logitdyn::scenario
