// Experiment E11 — the paper's Glauber/logit dictionary (Sections 1, 5).
// Port of bench/exp_ising_equivalence; stdout unchanged on defaults.
//
// Glauber dynamics on the zero-field ferromagnetic Ising model is exactly
// the logit dynamics of a graphical coordination game with
// delta0 = delta1 = 2J (no risk-dominant equilibrium).
#include <cmath>

#include "analysis/tv.hpp"
#include "core/chain.hpp"
#include "core/simulator.hpp"
#include "games/ising.hpp"
#include "graph/builders.hpp"
#include "scenario/experiments.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E11: Glauber on Ising == logit on coordination games",
      "claim: transition matrices coincide exactly for delta0 = delta1 = 2J");

  const double coupling = spec.params.at("coupling").as_double();

  {
    report.section("transition-matrix equality");
    ReportTable& table =
        report.table({"graph", "J", "beta", "max|P_is - P_coord|",
                      "TV(pi_is, pi_coord)"});
    struct Case {
      const char* name;
      Graph graph;
    };
    std::vector<Case> cases;
    cases.push_back({"ring(6)", make_ring(6)});
    if (!opts.smoke) {
      cases.push_back({"path(6)", make_path(6)});
      cases.push_back({"grid-2x3", make_grid(2, 3)});
      cases.push_back({"clique(5)", make_clique(5)});
    }
    for (const Case& c : cases) {
      for (double beta : opts.betas_or(opts.smoke
                                           ? std::vector<double>{0.4}
                                           : std::vector<double>{0.4, 1.1})) {
        IsingGame ising(c.graph, coupling);
        GraphicalCoordinationGame coord = ising.equivalent_coordination_game();
        LogitChain a(ising, beta);
        LogitChain b(coord, beta);
        const double dp =
            a.dense_transition().max_abs_diff(b.dense_transition());
        const double dpi = total_variation(a.stationary(), b.stationary());
        table.row()
            .cell(c.name)
            .cell(coupling, 2)
            .cell(beta, 2)
            .cell_sci(dp)
            .cell_sci(dpi);
      }
    }
    table.print();
  }

  {
    report.section(
        "simulation: shared seeds give identical magnetization traces");
    const uint64_t seed = opts.seed_or(4242);
    report.record_seed("shared_trajectory", seed);
    IsingGame ising(make_ring(32), 1.0);
    GraphicalCoordinationGame coord = ising.equivalent_coordination_game();
    ReportTable& table =
        report.table({"beta", "steps", "mean |m| (ising)", "mean |m| (coord)",
                      "identical trace"});
    const int64_t steps = opts.smoke ? 2000 : 20000;
    for (double beta : opts.smoke ? std::vector<double>{0.3}
                                  : std::vector<double>{0.3, 0.8}) {
      LogitChain a(ising, beta);
      LogitChain b(coord, beta);
      Rng ra(seed), rb(seed);
      Profile xa(32, 0), xb(32, 0);
      double sum_a = 0.0, sum_b = 0.0;
      bool identical = true;
      for (int64_t t = 0; t < steps; ++t) {
        a.step(xa, ra);
        b.step(xb, rb);
        identical = identical && (xa == xb);
        sum_a += std::abs(ising.magnetization(xa)) / 32.0;
        sum_b += std::abs(ising.magnetization(xb)) / 32.0;
      }
      table.row()
          .cell(beta, 2)
          .cell(steps)
          .cell(sum_a / double(steps), 4)
          .cell(sum_b / double(steps), 4)
          .cell(identical ? "yes" : "NO");
    }
    table.print();
    report.note("mean |magnetization| rises with beta: the ordered phase "
                "of the equivalent ferromagnet.");
  }
}

}  // namespace

void register_ising_equivalence(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "ising";
  spec.n = 6;
  spec.params.set("coupling", 0.8).set("field", 0.0);
  Json topo = Json::object();
  topo.set("kind", "ring");
  spec.topology = std::move(topo);
  reg.add({"ising_equivalence",
           "E11: Glauber on Ising == logit on coordination games",
           "transition matrices coincide exactly for delta0 = delta1 = 2J",
           spec, run});
}

}  // namespace logitdyn::scenario
