// Sampling-scale experiment over the src/local/ engine: logit dynamics on
// graphical coordination / Ising games with 10^5-10^7 players, simulated
// through local fields instead of the 2^n state space (DESIGN.md §13).
// Four sections: (1) exact operator-scale cross-checks on a 10-player
// ring, (2) the million-player (beta, topology, kernel) sweep with
// players/sec throughput, (3) a ReplicaFleet consensus study with an
// online tail estimate, (4) the concurrent-kernel bit-identity contract
// across ThreadPool sizes.
#include <cmath>
#include <memory>
#include <sstream>

#include "core/chain.hpp"
#include "games/graphical_coordination.hpp"
#include "games/ising.hpp"
#include "graph/builders.hpp"
#include "local/checkpoint.hpp"
#include "local/replica_fleet.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/experiments.hpp"
#include "support/timer.hpp"

namespace logitdyn::scenario {
namespace {

using local::BinaryLocalRule;
using local::FleetCheckpoint;
using local::FleetOptions;
using local::FleetRunOptions;
using local::FleetSummary;
using local::Kernel;
using local::LocalDynamics;
using local::LocalState;
using local::LocalTopology;
using local::ReplicaFleet;

/// FNV-fold of the per-replica strategy fingerprints: one value that only
/// matches when every replica's final strategies match — what the CI
/// kill/resume leg greps out of the report and diffs.
uint64_t fold_hashes(const std::vector<uint64_t>& hashes) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t x : hashes) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex_string(uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

/// The spec's family decides the local rule AND the small-instance oracle
/// game used by the exact cross-checks.
struct FamilyBinding {
  BinaryLocalRule rule;
  std::function<std::unique_ptr<Game>(Graph)> make_oracle;
};

FamilyBinding bind_family(const ScenarioSpec& spec) {
  if (spec.family == "ising") {
    const double coupling = spec.params.at("coupling").as_double();
    const double field = spec.params.at("field").as_double();
    return {BinaryLocalRule::ising(coupling, field),
            [coupling, field](Graph g) -> std::unique_ptr<Game> {
              return std::make_unique<IsingGame>(std::move(g), coupling,
                                                 field);
            }};
  }
  const CoordinationPayoffs pay = CoordinationPayoffs::from_deltas(
      spec.params.at("delta0").as_double(),
      spec.params.at("delta1").as_double());
  return {BinaryLocalRule::graphical_coordination(pay),
          [pay](Graph g) -> std::unique_ptr<Game> {
            return std::make_unique<GraphicalCoordinationGame>(std::move(g),
                                                               pay);
          }};
}

Json topology_json(const std::string& kind, int64_t a, int64_t b) {
  Json t = Json::object();
  t.set("kind", kind);
  if (kind == "torus") {
    t.set("rows", a).set("cols", b);
  } else if (kind == "random_regular") {
    t.set("n", a).set("d", b).set("seed", int64_t(7));
  } else if (kind == "erdos_renyi") {
    t.set("n", a);
    t.set("p", 3.0 / double(a));  // mean degree 3
    t.set("seed", int64_t(7));
  } else {
    t.set("n", a);
  }
  return t;
}

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "local_mix: sampling-scale logit dynamics on local-interaction games",
      "O(degree)-per-move simulation reaches 10^6+ players; concurrent "
      "updates (arXiv:1207.2908) are deterministic at every pool size");

  const FamilyBinding fam = bind_family(spec);
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = &ThreadPool::global();
  if (opts.threads > 0) {
    owned_pool = std::make_unique<ThreadPool>(size_t(opts.threads));
    pool = owned_pool.get();
  }
  const uint64_t master_seed = opts.seed_or(20110604);
  report.record_seed("master", master_seed);

  {
    report.section("exact cross-checks on ring(10): update rule + "
                   "stationary magnetization");
    const uint32_t n_small = 10;
    const Graph ring = make_ring(n_small);
    const std::unique_ptr<Game> game = fam.make_oracle(ring);
    const LocalTopology topo(ring);
    const double beta = 0.8;
    LocalDynamics dyn(&topo, &fam.rule, beta, nullptr);

    // Exact stationary E[magnetization] from the operator layer.
    LogitChain chain(*game, beta);
    const std::vector<double> pi = chain.stationary();
    double exact_mag = 0.0;
    for (size_t x = 0; x < pi.size(); ++x) {
      const int ones = game->space().count_playing(x, 1);
      exact_mag += pi[x] * (2.0 * double(ones) - n_small) / double(n_small);
    }

    // Empirical time-average from the async sampler (one sweep between
    // samples to decorrelate a little; the MC error is O(1/sqrt(samples))
    // times an autocorrelation factor — the seeded test pins a tolerance).
    Rng rng(master_seed);
    LocalState state = dyn.make_state();
    state.randomize(0.5, rng);
    const uint64_t burn = opts.smoke ? 20'000 : 100'000;
    const uint64_t samples = opts.smoke ? 40'000 : 400'000;
    dyn.run_async(state, burn, rng);
    double mag_sum = 0.0;
    double defect = 0.0;
    for (uint64_t s = 0; s < samples; ++s) {
      dyn.run_async(state, n_small, rng);
      mag_sum += state.magnetization();
      if (s % (samples / 8) == 0) {
        defect = std::max(defect,
                          update_rule_defect(state, dyn.flip_table(), *game));
      }
    }
    const double emp_mag = mag_sum / double(samples);

    ReportTable& table = report.table(
        {"check", "exact", "sampled", "|diff|", "max rule defect"});
    table.row()
        .cell("E_pi[magnetization], beta=0.8")
        .cell(exact_mag, 4)
        .cell(emp_mag, 4)
        .cell(std::abs(exact_mag - emp_mag), 4)
        .cell_sci(defect);
    table.print();
    report.record_value("stationary_mag_exact", Json(exact_mag));
    report.record_value("stationary_mag_sampled", Json(emp_mag));
    report.record_value("update_rule_defect", Json(defect));
    report.note("the flip table IS the logit update rule: the defect is "
                "pure floating-point noise, and the sampler's long-run "
                "magnetization matches the exact Gibbs expectation.");
  }

  {
    report.section("sampling-scale sweep: players/sec by topology and "
                   "kernel");
    struct Point {
      std::string kind;
      int64_t a, b;  // torus: rows/cols; otherwise: n / degree
    };
    std::vector<Point> points;
    if (opts.smoke) {
      points = {{"torus", 1000, 1000},
                {"random_regular", 1'000'000, 4},
                {"erdos_renyi", 100'000, 0}};
    } else {
      points = {{"torus", 1000, 1000},
                {"torus", 2000, 2000},
                {"random_regular", 1'000'000, 4},
                {"random_regular", 4'000'000, 4},
                {"erdos_renyi", 1'000'000, 0}};
    }
    const std::vector<double> betas =
        opts.betas_or(opts.smoke ? std::vector<double>{1.0}
                                 : std::vector<double>{0.5, 1.0, 2.0});
    const double revise_prob = 0.5;
    ReportTable& table = report.table({"topology", "n", "beta", "kernel",
                                       "steps", "flips", "mag", "Phi/n",
                                       "players/s", "wall s"});
    for (const Point& pt : points) {
      Timer build_timer;
      const Graph graph =
          build_topology(topology_json(pt.kind, pt.a, pt.b), uint32_t(pt.a));
      const LocalTopology topo(graph);
      const double build_s = build_timer.seconds();
      const uint32_t n = topo.num_vertices();
      std::ostringstream label;
      label << pt.kind << (pt.kind == "torus"
                               ? "(" + std::to_string(pt.a) + "x" +
                                     std::to_string(pt.b) + ")"
                               : "");
      report.note("built " + label.str() + " n=" + std::to_string(n) +
                  " edges=" + std::to_string(topo.num_edges()) + " in " +
                  std::to_string(build_s) + " s");
      LocalDynamics dyn(&topo, &fam.rule, betas.front(), pool);
      for (double beta : betas) {
        dyn.set_beta(beta);
        for (int kernel = 0; kernel < 2; ++kernel) {
          LocalState state = dyn.make_state();
          Rng rng(local::replica_seed(master_seed, 1));
          state.randomize(0.5, rng);
          Timer timer;
          uint64_t steps, flips;
          double opportunities;
          if (kernel == 0) {
            steps = opts.smoke ? 2 * uint64_t(n) : 10 * uint64_t(n);
            flips = dyn.run_async(state, steps, rng);
            opportunities = double(steps);
          } else {
            steps = opts.smoke ? 4 : 16;  // rounds
            flips = dyn.run_concurrent(state, steps, revise_prob,
                                       local::replica_seed(master_seed, 1));
            opportunities = double(steps) * double(n);
          }
          const double wall = timer.seconds();
          table.row()
              .cell(label.str())
              .cell(int64_t(n))
              .cell(beta, 2)
              .cell(kernel == 0 ? "async" : "concurrent")
              .cell(int64_t(steps))
              .cell(int64_t(flips))
              .cell(state.magnetization(), 4)
              .cell(state.potential(pool) / double(n), 4)
              .cell_sci(wall > 0 ? opportunities / wall : 0.0)
              .cell(wall, 3);
        }
      }
    }
    table.print();
    report.note("async rows count single-site updates; concurrent rows "
                "count one revision opportunity per player per round "
                "(revise_prob = 0.5).");
  }

  {
    report.section("replica fleet: time-to-consensus survival on a torus");
    const Graph graph = make_torus(opts.smoke ? 30 : 60, opts.smoke ? 30 : 60);
    const LocalTopology topo(graph);
    LocalDynamics dyn(&topo, &fam.rule, 1.5, pool);
    FleetOptions fopts;
    fopts.replicas = opts.smoke ? 4 : 16;
    fopts.kernel = Kernel::kConcurrent;
    fopts.revise_prob = 0.5;
    fopts.horizon = opts.smoke ? 200 : 2000;
    // Cadence fine enough to catch the survival decay between samples
    // (consensus times cluster within a few dozen rounds at this beta).
    fopts.cadence = opts.smoke ? 2 : 5;
    fopts.measure_blocks = 4;
    ReplicaFleet fleet(&dyn, fopts);
    // Run-control plumbing (DESIGN.md §14): deadline/cancel handle plus
    // the checkpoint/resume knobs from the CLI — this is the section the
    // CI kill/resume leg exercises.
    FleetRunOptions fleet_run;
    fleet_run.control = opts.control;
    fleet_run.checkpoint_every = opts.checkpoint_every;
    fleet_run.checkpoint_path = opts.checkpoint_path;
    fleet_run.on_checkpoint = opts.on_checkpoint;
    FleetCheckpoint resume_ck;
    if (!opts.resume_path.empty()) {
      resume_ck = local::load_checkpoint(opts.resume_path);
      fleet_run.resume = &resume_ck;
      // Resume provenance in the status block (DESIGN.md §16): a
      // restarted daemon's report says which snapshot it picked up.
      report.set_resumed_from(opts.resume_path);
    }
    const FleetSummary summary = fleet.run(master_seed, fleet_run);
    ReportTable& table = report.table({"round", "mag mean", "mag var",
                                       "Phi mean", "survival"});
    const size_t stride = std::max<size_t>(1, summary.steps.size() / 8);
    for (size_t i = 0; i < summary.steps.size(); i += stride) {
      table.row()
          .cell(int64_t(summary.steps[i]))
          .cell(summary.mag_mean[i], 4)
          .cell(summary.mag_var[i], 4)
          .cell(summary.phi_mean[i], 2)
          .cell(summary.survival[i], 3);
    }
    table.print();
    report.record_value("consensus_count", Json(int64_t(summary.consensus_count)));
    report.record_value("fleet_players_per_sec", Json(summary.players_per_sec));
    report.record_value("fleet_progress", Json(int64_t(summary.progress)));
    report.record_value("fleet_interrupted", Json(summary.interrupted));
    report.record_value(
        "fleet_final_hash",
        Json(hex_string(fold_hashes(summary.final_strategy_hash))));
    if (summary.tail_rate) {
      report.record_value("consensus_tail_rate", Json(*summary.tail_rate));
      report.note("survival tail rate (slope of -log S(t)): " +
                  std::to_string(*summary.tail_rate));
    } else {
      report.note("survival curve never partially decayed in-horizon; no "
                  "tail rate fitted.");
    }
  }

  {
    report.section("checkpoint/resume: snapshot round-trip bit-identity "
                   "across pool sizes");
    // For both kernels and pools {1, 2, 4}: run a small fleet to the end,
    // run it again capturing the mid-horizon snapshot, round-trip that
    // snapshot through its JSON codec in memory, resume from it, and
    // demand the resumed run's strategies AND recorded observables match
    // the uninterrupted run bit for bit (DESIGN.md §14).
    const Graph graph = make_torus(20, 20);
    const LocalTopology topo(graph);
    const uint64_t seed = local::replica_seed(master_seed, 5);
    bool all_identical = true;
    ReportTable& table = report.table(
        {"kernel", "pool threads", "full hash", "resumed hash", "identical"});
    for (int kernel = 0; kernel < 2; ++kernel) {
      for (size_t threads : {size_t(1), size_t(2), size_t(4)}) {
        ThreadPool small_pool(threads);
        LocalDynamics dyn(&topo, &fam.rule, 1.2, &small_pool);
        FleetOptions fopts;
        fopts.replicas = 3;
        fopts.kernel = kernel == 0 ? Kernel::kAsync : Kernel::kConcurrent;
        fopts.revise_prob = 0.5;
        fopts.horizon = kernel == 0 ? 2000 : 8;
        fopts.cadence = kernel == 0 ? 200 : 2;
        fopts.measure_blocks = 2;
        ReplicaFleet fleet(&dyn, fopts);

        const FleetSummary full = fleet.run(seed);

        FleetCheckpoint captured;
        FleetRunOptions snapshotting;
        snapshotting.checkpoint_every = fopts.horizon / 2;
        snapshotting.capture = &captured;
        fleet.run(seed, snapshotting);

        const FleetCheckpoint restored =
            FleetCheckpoint::from_json(Json::parse(captured.to_json().dump(0)));
        FleetRunOptions resuming;
        resuming.resume = &restored;
        const FleetSummary resumed = fleet.run(seed, resuming);

        const bool identical =
            full.final_strategy_hash == resumed.final_strategy_hash &&
            full.steps == resumed.steps &&
            full.mag_mean == resumed.mag_mean &&
            full.mag_var == resumed.mag_var &&
            full.phi_mean == resumed.phi_mean &&
            full.survival == resumed.survival;
        all_identical = all_identical && identical;
        table.row()
            .cell(kernel == 0 ? "async" : "concurrent")
            .cell(int64_t(threads))
            .cell(hex_string(fold_hashes(full.final_strategy_hash)))
            .cell(hex_string(fold_hashes(resumed.final_strategy_hash)))
            .cell(identical ? "yes" : "NO");
      }
    }
    table.print();
    report.record_value("resume_bit_identical", Json(all_identical));
    report.note(all_identical
                    ? "a run resumed from a mid-horizon snapshot is "
                      "bit-identical to the uninterrupted run — "
                      "trajectories, observables, and flip counts — at "
                      "every pool size and for both kernels."
                    : "RESUME DIVERGENCE: a resumed run differs from the "
                      "uninterrupted one.");
  }

  {
    report.section("determinism: concurrent trajectories across pool sizes");
    const Graph graph = make_torus(100, 100);
    const LocalTopology topo(graph);
    const uint64_t seed = local::replica_seed(master_seed, 3);
    uint64_t reference_hash = 0;
    bool identical = true;
    ReportTable& table =
        report.table({"pool threads", "rounds", "ones", "strategy hash"});
    for (size_t threads : {size_t(1), size_t(2), size_t(4)}) {
      ThreadPool small_pool(threads);
      LocalDynamics dyn(&topo, &fam.rule, 1.2, &small_pool);
      LocalState state = dyn.make_state();
      Rng init(seed);
      state.randomize(0.5, init);
      dyn.run_concurrent(state, 8, 0.5, seed);
      const uint64_t hash = local::strategy_hash(state.strategies());
      if (threads == 1) reference_hash = hash;
      identical = identical && hash == reference_hash;
      std::ostringstream hex;
      hex << std::hex << hash;
      table.row()
          .cell(int64_t(threads))
          .cell(int64_t(8))
          .cell(state.ones())
          .cell(hex.str());
    }
    table.print();
    report.record_value("bit_identical", Json(identical));
    report.note(identical
                    ? "shard streams are pool-size independent: trajectories "
                      "are bit-identical at 1, 2, and 4 threads."
                    : "DETERMINISM VIOLATION: trajectories differ across "
                      "pool sizes.");
  }
}

}  // namespace

void register_local_mix(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "graphical_coordination";
  spec.n = 1'000'000;
  spec.params.set("delta0", 2.0).set("delta1", 1.0);
  spec.topology = Json::object();
  spec.topology.set("kind", "torus").set("rows", int64_t(1000)).set(
      "cols", int64_t(1000));
  reg.add({"local_mix",
           "local_mix: sampling-scale logit dynamics on local-interaction "
           "games",
           "O(degree)-per-move simulation reaches 10^6+ players; concurrent "
           "updates (arXiv:1207.2908) are deterministic at every pool size",
           spec, run});
}

}  // namespace logitdyn::scenario
