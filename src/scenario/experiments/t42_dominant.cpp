// Experiment E7 — Theorems 4.2/4.3: games with dominant strategies. Port
// of bench/exp_t42_dominant; stdout unchanged on defaults.
//
// T4.2: t_mix = O(m^n n log n) *independently of beta* — the mixing time
// saturates as beta grows instead of diverging.
// T4.3: the all-or-nothing game attains t_mix = Omega(m^{n-1}); the m^n
// factor in T4.2 cannot be removed.
#include <cmath>
#include <sstream>

#include "analysis/bounds.hpp"
#include "core/chain.hpp"
#include "core/lumped.hpp"
#include "games/dominant.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E7: dominant strategies cap the mixing time (Thms 4.2/4.3)",
      "claim: t_mix saturates in beta at Theta(m^{n-1}) for the "
      "all-or-nothing game");

  {
    const int n = spec.n;
    const int32_t m = int32_t(spec.params.at("strategies").as_int());
    std::ostringstream title;
    title << "beta sweep, n = " << n << ", m = " << m
          << ": full lumped chain (exact)";
    report.section(title.str());
    ReportTable& table = report.table(
        {"beta", "t_mix (exact)", "thm 4.2 cap", "thm 4.3 floor"});
    const double cap = bounds::thm42_tmix_upper(n, m);
    const std::vector<double> grid = opts.betas_or(
        opts.smoke
            ? std::vector<double>{0.0, 4.0, 64.0}
            : std::vector<double>{0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0,
                                  256.0});
    for (double beta : grid) {
      const BirthDeathChain bd =
          BirthDeathChain::all_or_nothing_chain(n, m, beta);
      const MixingResult mix = harness::exact_tmix(bd);
      table.row()
          .cell(beta, 1)
          .cell(harness::tmix_cell(mix))
          .cell_sci(cap)
          .cell(bounds::thm43_tmix_lower(n, m, beta), 1);
    }
    table.print();
    report.note("note: t_mix stops growing once beta ~ log(m^n) — the "
                "Theorem 4.2 phenomenon; a potential game with the same "
                "DeltaPhi = 1 would keep growing as e^{beta}.");
  }

  {
    report.section(
        "full-chain validation of the beta plateau (n = 4, m = 2: 16 states)");
    AllOrNothingGame game(4, 2);
    ReportTable& table =
        report.table({"beta", "t_mix full", "t_mix lumped", "lumped<=full"});
    for (double beta : opts.smoke ? std::vector<double>{1.0, 64.0}
                                  : std::vector<double>{1.0, 8.0, 64.0}) {
      LogitChain chain(game, beta);
      const MixingResult full = harness::exact_tmix(chain);
      const BirthDeathChain bd =
          BirthDeathChain::all_or_nothing_chain(4, 2, beta);
      const MixingResult lump = harness::exact_tmix(bd);
      table.row()
          .cell(beta, 1)
          .cell(harness::tmix_cell(full))
          .cell(harness::tmix_cell(lump))
          .cell(lump.time <= full.time ? "yes" : "NO");
    }
    table.print();
  }

  if (opts.smoke) return;

  {
    report.section(
        "scaling in (n, m) at beta = 40 (deep best-response regime)");
    ReportTable& table =
        report.table({"n", "m", "m^n", "t_mix (lumped)", "(m^n-1)/(4(m-1))",
                      "t_mix*4(m-1)/(m^n-1)"});
    struct Case {
      int n;
      int32_t m;
    };
    const Case cases[] = {{4, 2},  {6, 2},  {8, 2},  {10, 2}, {12, 2},
                          {4, 3},  {6, 3},  {4, 4},  {5, 4}};
    for (const Case& c : cases) {
      const BirthDeathChain bd =
          BirthDeathChain::all_or_nothing_chain(c.n, c.m, 40.0);
      const MixingResult mix = harness::exact_tmix(bd);
      const double floor_bound =
          (std::pow(double(c.m), c.n) - 1.0) / (4.0 * (c.m - 1.0));
      table.row()
          .cell(c.n)
          .cell(int(c.m))
          .cell(std::pow(double(c.m), c.n), 0)
          .cell(harness::tmix_cell(mix))
          .cell(floor_bound, 1)
          .cell(double(mix.time) / floor_bound, 2);
    }
    table.print();
    report.note("the last column is the measured constant in Theta(m^n): "
                "stable across sizes => t_mix scales exactly like m^n (the "
                "lumped chain lower-bounds the full chain; Thm 4.3 claims "
                "Omega(m^{n-1}))");
  }
}

}  // namespace

void register_t42_dominant(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "dominant";
  spec.n = 8;
  spec.params.set("strategies", 2);
  reg.add({"t42_dominant",
           "E7: dominant strategies cap the mixing time (Thms 4.2/4.3)",
           "t_mix saturates in beta at Theta(m^{n-1}) for the "
           "all-or-nothing game",
           spec, run});
}

}  // namespace logitdyn::scenario
