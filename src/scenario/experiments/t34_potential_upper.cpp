// Experiment E3 — Theorem 3.4 (upper bound for all beta, potential games).
// Port of bench/exp_t34_potential_upper; stdout unchanged on defaults.
//
// claim: t_mix(eps) <= 2mn e^{beta DeltaPhi}(log 1/eps + beta DeltaPhi +
// n log m). The exact worst-case t_mix of the full chain must sit below
// the bound at every beta, and the bound's exponential rate (DeltaPhi)
// must upper-bound the measured rate.
#include <algorithm>
#include <sstream>

#include "analysis/bounds.hpp"
#include "analysis/potential_stats.hpp"
#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "core/logit_operator.hpp"
#include "games/plateau.hpp"
#include "games/random_potential.hpp"
#include "linalg/lanczos.hpp"
#include "rng/rng.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E3: mixing time vs the Theorem 3.4 upper bound",
      "claim: t_mix <= 2mn e^{beta*DPhi}(log 4 + beta*DPhi + n log m) for "
      "every potential game and every beta");

  {
    const int n = spec.n;
    const Json* gj = spec.params.find("global_variation");
    const double g = gj ? gj->as_double() : double(n) / 2.0;
    const double l = spec.params.at("local_variation").as_double();
    std::ostringstream title;
    title << "plateau game, n = " << n << ", g = " << int(g) << ", l = "
          << int(l) << " (" << (size_t(1) << n) << " states)";
    report.section(title.str());
    PlateauGame game(n, g, l);
    ReportTable& table =
        report.table({"beta", "t_mix (exact)", "thm 3.4 bound", "bound/t_mix"});
    std::vector<double> betas, times;
    // One chain across the whole sweep: beta is mutable on Dynamics.
    LogitChain chain(game, 0.0);
    const std::vector<double> grid = opts.betas_or(
        opts.smoke ? std::vector<double>{0.0, 1.0, 2.0}
                   : std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0});
    for (double beta : grid) {
      chain.set_beta(beta);
      const MixingResult mix = harness::exact_tmix(chain);
      const double bound = bounds::thm34_tmix_upper(n, 2, beta, g, 0.25);
      table.row()
          .cell(beta, 2)
          .cell(harness::tmix_cell(mix))
          .cell_sci(bound)
          .cell(mix.converged ? bound / double(mix.time) : 0.0, 1);
      if (mix.converged && beta >= 1.0) {
        betas.push_back(beta);
        times.push_back(double(mix.time));
      }
    }
    table.print();
    if (betas.size() >= 2) {
      const LineFit fit = harness::rate_fit(betas, times);
      report.record_fit("tmix_beta_rate", fit, g);
      report.note("measured exp. rate of t_mix in beta: " +
                  format_double(fit.slope, 3) +
                  "  (bound rate = DeltaPhi = " + format_double(g, 1) +
                  "; measured must be <=)");
    }
  }

  {
    report.section("random potential games, n = 3, m = 3 (27 states)");
    const uint64_t seed = opts.seed_or(7);
    report.record_seed("random_potential", seed);
    Rng rng(seed);
    ReportTable& table = report.table(
        {"trial", "DeltaPhi", "beta", "t_mix", "thm 3.4 bound", "holds"});
    const int trials = opts.smoke ? 2 : 4;
    for (int trial = 0; trial < trials; ++trial) {
      const TablePotentialGame game =
          make_random_potential_game(ProfileSpace(3, 3), 1.5, rng);
      const std::vector<double> phi = potential_table(game);
      const PotentialStats stats = potential_stats(game.space(), phi);
      LogitChain chain(game, 0.0);
      for (double beta : {0.5, 1.5, 3.0}) {
        chain.set_beta(beta);
        const MixingResult mix = harness::exact_tmix(chain);
        const double bound = bounds::thm34_tmix_upper(
            3, 3, beta, stats.global_variation, 0.25);
        table.row()
            .cell(trial)
            .cell(stats.global_variation, 3)
            .cell(beta, 2)
            .cell(harness::tmix_cell(mix))
            .cell_sci(bound)
            .cell(!mix.converged || double(mix.time) <= bound ? "yes" : "NO");
      }
    }
    table.print();
  }

  if (opts.smoke) return;  // the 16384-state operator section is not smoke-sized

  {
    report.section(
        "operator scale: plateau n = 14 (16384 states) — Theorem 2.3 "
        "bracket from Lanczos t_rel, single-start evolution inside it");
    // Above the dense cutover the exact doubling ladder is out of reach;
    // the operator path brackets t_mix by Theorem 2.3 (t_rel from Lanczos
    // on the matrix-free kernel) and lower-bounds it with batched
    // multi-start TV evolution — the bracket and the Theorem 3.4 bound
    // must both contain/dominate the evolved times.
    PlateauGame game(14, 7.0, 1.0);
    LogitChain chain(game, 0.0);
    ReportTable& table =
        report.table({"beta", "t_rel (lanczos)", "thm 2.3 lower",
                      "t_mix from extremes", "thm 2.3 upper", "thm 3.4 bound"});
    for (double beta : {0.2, 0.4}) {
      chain.set_beta(beta);
      const std::vector<double> pi = chain.stationary();
      const LogitOperator op(game, beta, UpdateKind::kAsynchronous);
      LanczosOptions lopts;
      lopts.tol = 1e-10;
      const LanczosSpectrum lz = lanczos_spectrum(op, pi, lopts);
      const double pi_min = *std::min_element(pi.begin(), pi.end());
      const Theorem23Bracket bracket =
          tmix_bracket_from_relaxation(lz.relaxation_time(), pi_min, 0.25);
      // The two potential wells: all-zeros and all-ones.
      const size_t starts[] = {0, game.space().num_profiles() - 1};
      const OperatorMixingResult mix =
          mixing_time_operator(op, pi, starts, 0.25, 1 << 18);
      const double bound =
          bounds::thm34_tmix_upper(14, 2, beta, 7.0, 0.25);
      // An unconverged Ritz estimate underestimates t_rel, which would
      // invalidate the bracket — flag it rather than print it bare.
      const std::string unconv = lz.converged ? "" : " (UNCONVERGED)";
      table.row()
          .cell(beta, 2)
          .cell(format_double(lz.relaxation_time(), 3) + unconv)
          .cell(format_double(bracket.lower, 1) + unconv)
          .cell(harness::tmix_cell(mix.worst))
          .cell(format_double(bracket.upper, 1) + unconv)
          .cell_sci(bound);
    }
    table.print();
    report.note("extreme-state evolution lower-bounds worst-case t_mix; "
                "Theorem 2.3's upper bracket and the Theorem 3.4 bound "
                "dominate it.");
  }
}

}  // namespace

void register_t34_potential_upper(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "plateau";
  spec.n = 6;
  spec.params.set("global_variation", 3.0).set("local_variation", 1.0);
  reg.add({"t34_potential_upper",
           "E3: mixing time vs the Theorem 3.4 upper bound",
           "t_mix <= 2mn e^{beta*DPhi}(log 4 + beta*DPhi + n log m) for "
           "every potential game and every beta",
           spec, run});
}

}  // namespace logitdyn::scenario
