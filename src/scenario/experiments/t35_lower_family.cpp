// Experiment E4 — Theorem 3.5 (exponential lower-bound family). Port of
// bench/exp_t35_lower_family; stdout unchanged on defaults.
//
// The plateau potential Phi_n(x) = -l * min{c, |c - w(x)|} forces
// t_mix >= e^{beta*DeltaPhi(1-o(1))}: the Gibbs measure splits between the
// all-zeros well and the high-weight cap across a barrier of height
// DeltaPhi = g.
#include <cmath>
#include <sstream>

#include "analysis/bottleneck.hpp"
#include "analysis/bounds.hpp"
#include "core/chain.hpp"
#include "core/lumped.hpp"
#include "games/plateau.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E4: the Theorem 3.5 lower-bound family (plateau potentials)",
      "claim: t_mix >= e^{beta*g*(1-o(1))} — exponential in beta and in "
      "the global variation g");

  {
    const int n = spec.n;
    const Json* gj = spec.params.find("global_variation");
    const double g = gj ? gj->as_double() : double(n) / 2.0;
    const double l = spec.params.at("local_variation").as_double();
    std::ostringstream title;
    title << "exact t_mix of the weight-lumped chain, n = " << n << ", g = "
          << int(g) << ", l = " << int(l);
    report.section(title.str());
    PlateauGame game(n, g, l);
    std::vector<double> wphi(size_t(n) + 1);
    for (int k = 0; k <= n; ++k) wphi[size_t(k)] = game.potential_of_weight(k);
    ReportTable& table =
        report.table({"beta", "t_mix (lumped, exact)",
                      "thm 2.7 bottleneck LB", "thm 3.5 closed form"});
    std::vector<double> betas, times;
    const std::vector<double> grid = opts.betas_or(
        opts.smoke
            ? std::vector<double>{0.5, 1.5, 2.5}
            : std::vector<double>{0.5, 1.0, 1.5, 2.0, 2.25, 2.5, 2.75, 3.0,
                                  3.25});
    for (double beta : grid) {
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const MixingResult mix = harness::exact_tmix(bd);
      // Bottleneck set R = {w < c} on the lumped chain (same mass and flow
      // as the paper's full-chain set).
      const DenseMatrix p = bd.transition();
      const std::vector<double> pi = bd.stationary();
      std::vector<uint8_t> in_set(pi.size(), 0);
      for (int k = 0; k < game.barrier_weight(); ++k) in_set[size_t(k)] = 1;
      const double b = bottleneck_ratio(p, pi, in_set);
      table.row()
          .cell(beta, 2)
          .cell(harness::tmix_cell(mix))
          .cell_sci(tmix_lower_from_bottleneck(b, 0.25))
          .cell_sci(bounds::thm35_tmix_lower(n, g, l, beta, 0.25));
      if (mix.converged && beta >= 2.25) {
        betas.push_back(beta);
        times.push_back(double(mix.time));
      }
    }
    table.print();
    if (betas.size() >= 2) {
      const LineFit fit = harness::rate_fit(betas, times);
      report.record_fit("tmix_beta_rate", fit, g);
      report.note("fitted exponential rate (beta >= 2.25): " +
                  format_double(fit.slope, 3) +
                  "  (paper predicts -> DeltaPhi = g = " +
                  format_double(g, 0) +
                  " as beta grows; the gap is the paper's own o(1) — the "
                  "entropy term (DPhi/dPhi) log n; r^2 = " +
                  format_double(fit.r2, 4) + ")");
    }
  }

  {
    report.section("full-chain cross-check, n = 8, g = 4, l = 2");
    const int n = 8;
    PlateauGame game(n, 4.0, 2.0);
    std::vector<double> wphi(size_t(n) + 1);
    for (int k = 0; k <= n; ++k) wphi[size_t(k)] = game.potential_of_weight(k);
    ReportTable& table =
        report.table({"beta", "t_mix full (256 states)", "t_mix lumped",
                      "lumped<=full"});
    for (double beta : opts.smoke ? std::vector<double>{0.5, 1.5}
                                  : std::vector<double>{0.5, 1.0, 1.5, 2.0}) {
      LogitChain chain(game, beta);
      const MixingResult full = harness::exact_tmix(chain);
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const MixingResult lump = harness::exact_tmix(bd);
      table.row()
          .cell(beta, 2)
          .cell(harness::tmix_cell(full))
          .cell(harness::tmix_cell(lump))
          .cell(lump.time <= full.time ? "yes" : "NO");
    }
    table.print();
  }

  if (opts.smoke) return;

  {
    report.section("growth in g at fixed beta = 1.5 (lumped, n = 32)");
    ReportTable& table =
        report.table({"g", "l", "t_mix (exact)", "e^{beta*g}"});
    const int n = 32;
    const double beta = 1.5;
    for (double g : {2.0, 4.0, 6.0, 8.0}) {
      PlateauGame game(n, g, 2.0);
      std::vector<double> wphi(size_t(n) + 1);
      for (int k = 0; k <= n; ++k) {
        wphi[size_t(k)] = game.potential_of_weight(k);
      }
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const MixingResult mix = harness::exact_tmix(bd);
      table.row()
          .cell(g, 1)
          .cell(2.0, 1)
          .cell(harness::tmix_cell(mix))
          .cell_sci(std::exp(beta * g));
    }
    table.print();
  }
}

}  // namespace

void register_t35_lower_family(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "plateau";
  spec.n = 32;
  spec.params.set("global_variation", 8.0).set("local_variation", 2.0);
  reg.add({"t35_lower_family",
           "E4: the Theorem 3.5 lower-bound family (plateau potentials)",
           "t_mix >= e^{beta*g*(1-o(1))} — exponential in beta and in the "
           "global variation g",
           spec, run});
}

}  // namespace logitdyn::scenario
