// Ablation — the library's mixing-time machinery compared on shared
// workloads (accuracy and wall time). Port of bench/exp_ablation_methods;
// stdout tables unchanged on defaults (wall-clock cells vary run to run).
#include "analysis/mixing.hpp"
#include "analysis/spectral.hpp"
#include "analysis/tv.hpp"
#include "core/chain.hpp"
#include "core/coupling.hpp"
#include "core/lumped.hpp"
#include "games/graphical_coordination.hpp"
#include "games/plateau.hpp"
#include "graph/builders.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"
#include "support/timer.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "Ablation: mixing-time computation methods",
      "same chains, four estimators: exactness and cost");

  {
    report.section("ring n = 8, delta = 1, beta = 1.5 (256 states)");
    GraphicalCoordinationGame game(
        build_topology(spec.topology, uint32_t(spec.n)),
        CoordinationPayoffs::from_deltas(
            spec.params.at("delta0").as_double(),
            spec.params.at("delta1").as_double()));
    LogitChain chain(game, 1.5);
    const DenseMatrix p = chain.dense_transition();
    const std::vector<double> pi = chain.stationary();
    ReportTable& table = report.table({"method", "t_mix", "exact?", "wall ms"});

    Timer t1;
    const MixingResult doubling = mixing_time_doubling(p, pi, 0.25);
    table.row()
        .cell("doubling")
        .cell(harness::tmix_cell(doubling))
        .cell("worst-case exact")
        .cell(t1.millis(), 1);

    Timer t2;
    const SpectralEvaluator eval(p, pi);
    const MixingResult spectral = mixing_time_spectral(eval, 0.25);
    table.row()
        .cell("spectral")
        .cell(harness::tmix_cell(spectral))
        .cell("worst-case exact")
        .cell(t2.millis(), 1);

    Timer t3;
    const CsrMatrix csr = chain.csr_transition();
    const MixingResult from_ones = mixing_time_from_state(
        csr, game.space().index(Profile(size_t(spec.n), 1)), pi, 0.25,
        1 << 24);
    table.row()
        .cell("single-start (all-ones)")
        .cell(harness::tmix_cell(from_ones))
        .cell("lower bd on worst case")
        .cell(t3.millis(), 1);

    Timer t4;
    const uint64_t seed = opts.seed_or(11);
    report.record_seed("monotone_coupling", seed);
    const int64_t coupled = estimate_tmix_monotone(chain, 64, 0.25,
                                                   int64_t(1) << 24, seed);
    table.row()
        .cell("monotone coupling (64 reps)")
        .cell(coupled)
        .cell("statistical upper bd")
        .cell(t4.millis(), 1);
    table.print();
    report.note("expected ordering: single-start <= exact <= coupling "
                "estimate (up to sampling noise).");
  }

  if (!opts.smoke) {
    report.section(
        "lumping ablation: plateau n = 10 full (1024 states) vs lumped (11)");
    PlateauGame game(10, 5.0, 1.0);
    std::vector<double> wphi(11);
    for (int k = 0; k <= 10; ++k) wphi[size_t(k)] = game.potential_of_weight(k);
    ReportTable& table =
        report.table({"beta", "full t_mix", "full ms", "lumped t_mix",
                      "lumped ms"});
    for (double beta : {1.0, 1.5}) {
      Timer tf;
      LogitChain chain(game, beta);
      const MixingResult full = harness::exact_tmix(chain);
      const double full_ms = tf.millis();
      Timer tl;
      const BirthDeathChain bd = BirthDeathChain::weight_chain(10, beta, wphi);
      const MixingResult lump = harness::exact_tmix(bd);
      const double lump_ms = tl.millis();
      table.row()
          .cell(beta, 2)
          .cell(harness::tmix_cell(full))
          .cell(full_ms, 1)
          .cell(harness::tmix_cell(lump))
          .cell(lump_ms, 2);
    }
    table.print();
    report.note("the lumped chain reproduces the barrier physics at a "
                "vanishing fraction of the cost — and is the only exact "
                "option at n = 32+.");
  }

  {
    report.section("spectral vs doubling agreement across beta");
    PlateauGame game(6, 3.0, 1.0);
    ReportTable& table = report.table({"beta", "doubling", "spectral", "agree"});
    // One chain across the beta sweep (mutable beta on Dynamics).
    LogitChain chain(game, 0.0);
    for (double beta : opts.betas_or(
             opts.smoke ? std::vector<double>{0.0, 1.4}
                        : std::vector<double>{0.0, 0.7, 1.4, 2.1, 2.8})) {
      chain.set_beta(beta);
      const DenseMatrix p = chain.dense_transition();
      const std::vector<double> pi = chain.stationary();
      const MixingResult a = mixing_time_doubling(p, pi, 0.25);
      const MixingResult b = mixing_time_spectral(SpectralEvaluator(p, pi),
                                                  0.25);
      table.row()
          .cell(beta, 2)
          .cell(harness::tmix_cell(a))
          .cell(harness::tmix_cell(b))
          .cell(a.time == b.time ? "yes" : "NO");
    }
    table.print();
  }
}

}  // namespace

void register_ablation_methods(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "graphical_coordination";
  spec.n = 8;
  spec.params.set("delta0", 1.0).set("delta1", 1.0);
  Json topo = Json::object();
  topo.set("kind", "ring");
  spec.topology = std::move(topo);
  reg.add({"ablation_methods", "Ablation: mixing-time computation methods",
           "same chains, four estimators: exactness and cost",
           spec, run});
}

}  // namespace logitdyn::scenario
