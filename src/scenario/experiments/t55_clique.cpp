// Experiment E9 — Theorem 5.5: graphical coordination games on the
// clique. Port of bench/exp_t55_clique; stdout unchanged on defaults.
//
// claim: log t_mix / beta -> Phi_max - Phi(all-ones), the climb out of the
// shallower (non-risk-dominant) well over the potential ridge at k*. The
// clique game is weight-lumpable, so the exact analysis scales to n = 48.
#include <algorithm>
#include <cmath>

#include "analysis/spectral.hpp"
#include "analysis/zeta.hpp"
#include "core/chain.hpp"
#include "core/lumped.hpp"
#include "games/graphical_coordination.hpp"
#include "graph/builders.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"

namespace logitdyn::scenario {
namespace {

double barrier(const std::vector<double>& wphi) {
  // Phi_max - Phi(all-ones): the Theorem 5.5 exponent (delta0 >= delta1).
  return *std::max_element(wphi.begin(), wphi.end()) - wphi.back();
}

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E9: clique coordination games (Theorem 5.5)",
      "claim: log t_mix / beta -> Phi_max - Phi(1), via the exact "
      "weight-lumped chain");

  {
    report.section(
        "rate fit per n (delta0 = 1.2/(n-1), delta1 = 0.8/(n-1))");
    ReportTable& table =
        report.table({"n", "barrier", "zeta(path)", "fitted rate",
                      "rate/barrier", "r^2"});
    for (int n : opts.smoke ? std::vector<int>{8}
                            : std::vector<int>{8, 16, 32, 48}) {
      const double d0 = 1.2 / double(n - 1), d1 = 0.8 / double(n - 1);
      const std::vector<double> wphi = clique_weight_potential(n, d0, d1);
      const double bar = barrier(wphi);
      std::vector<double> betas, times;
      for (double beta :
           opts.betas_or({4.0, 5.5, 7.0, 8.5, 10.0})) {
        const BirthDeathChain bd =
            BirthDeathChain::weight_chain(n, beta, wphi);
        const MixingResult mix = harness::exact_tmix(bd);
        if (mix.converged) {
          betas.push_back(beta);
          times.push_back(double(mix.time));
        }
      }
      const LineFit fit = harness::rate_fit(betas, times);
      report.record_fit("tmix_beta_rate_n" + std::to_string(n), fit, bar);
      table.row()
          .cell(n)
          .cell(bar, 4)
          .cell(max_climb_on_path(wphi), 4)
          .cell(fit.slope, 4)
          .cell(fit.slope / bar, 3)
          .cell(fit.r2, 4);
    }
    table.print();
    report.note("rate/barrier -> 1 confirms log t_mix / beta -> "
                "Phi_max - Phi(1).");
  }

  if (opts.smoke) return;

  {
    report.section(
        "risk dominance matters: n = 24, beta = 6, sweeping delta1/delta0");
    const int n = 24;
    ReportTable& table =
        report.table({"delta1/delta0", "k*", "barrier", "t_mix (exact)"});
    const double d0 = 1.0 / double(n - 1);
    for (double ratio : {0.25, 0.5, 0.75, 1.0}) {
      const double d1 = ratio * d0;
      const std::vector<double> wphi = clique_weight_potential(n, d0, d1);
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, 6.0, wphi);
      const MixingResult mix = harness::exact_tmix(bd);
      table.row()
          .cell(ratio, 2)
          .cell(clique_barrier_weight(n, d0, d1))
          .cell(barrier(wphi), 4)
          .cell(harness::tmix_cell(mix));
    }
    table.print();
    report.note("delta0 = delta1 (no risk-dominant equilibrium) maximizes "
                "the barrier Theta(n^2 delta1) — the paper's worst case.");
  }

  {
    report.section("growth in n at fixed per-edge deltas (beta = 1)");
    // Un-normalized deltas: barrier ~ n^2, so t_mix explodes quickly; this
    // is the e^{beta(Phi_max - Phi(1))} statement read along n.
    ReportTable& table = report.table(
        {"n", "barrier", "t_mix (exact)", "log t_mix / barrier"});
    for (int n : {6, 8, 10, 12}) {
      const double d0 = 0.6, d1 = 0.4;
      const std::vector<double> wphi = clique_weight_potential(n, d0, d1);
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, 1.0, wphi);
      const MixingResult mix = harness::exact_tmix(bd);
      table.row()
          .cell(n)
          .cell(barrier(wphi), 3)
          .cell(harness::tmix_cell(mix))
          .cell(mix.converged ? std::log(double(mix.time)) / barrier(wphi)
                              : 0.0,
                3);
    }
    table.print();
  }

  {
    report.section(
        "lumping validated against the full 2^14-state chain: Lanczos on "
        "the matrix-free kernel vs the exact weight-lumped spectrum");
    // The clique game's slow mode lives on the weight coordinate, so
    // lambda_2 of the full chain must match lambda_2 of the (n+1)-state
    // lumped chain — the operator path can now check this directly at
    // sizes where the dense full-chain spectrum is unreachable.
    const int n = spec.n;
    const double d0 = spec.params.at("delta0").as_double();
    const double d1 = spec.params.at("delta1").as_double();
    const std::vector<double> wphi = clique_weight_potential(n, d0, d1);
    GraphicalCoordinationGame game(
        make_clique(uint32_t(n)),
        CoordinationPayoffs::from_deltas(d0, d1));
    LogitChain chain(game, 0.0);
    ReportTable& table =
        report.table({"beta", "lambda_2 (full, lanczos)", "lambda_2 (lumped)",
                      "|diff|", "t_rel full/lumped"});
    for (double beta : {3.0, 5.0}) {
      chain.set_beta(beta);
      const std::vector<double> pi = chain.stationary();
      SpectralOptions sopts;  // 16384 states: operator path
      sopts.lanczos.tol = 1e-10;
      const SpectralSummary full =
          spectral_summary(game, beta, UpdateKind::kAsynchronous, pi, sopts);
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const ChainSpectrum lumped =
          chain_spectrum(bd.transition(), bd.stationary());
      table.row()
          .cell(beta, 1)
          .cell(full.lambda2, 10)
          .cell(lumped.lambda2(), 10)
          .cell(std::abs(full.lambda2 - lumped.lambda2()), 10)
          .cell(full.relaxation_time() / lumped.relaxation_time(), 6);
    }
    table.print();
    report.note("full-chain lambda_2 == lumped lambda_2: the weight "
                "projection captures the slow mode exactly.");
  }
}

}  // namespace

void register_t55_clique(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "graphical_coordination";
  spec.n = 14;
  spec.params.set("delta0", 1.2 / 13.0).set("delta1", 0.8 / 13.0);
  Json topo = Json::object();
  topo.set("kind", "clique");
  spec.topology = std::move(topo);
  reg.add({"t55_clique", "E9: clique coordination games (Theorem 5.5)",
           "log t_mix / beta -> Phi_max - Phi(1), via the exact "
           "weight-lumped chain",
           spec, run});
}

}  // namespace logitdyn::scenario
