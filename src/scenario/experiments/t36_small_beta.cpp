// Experiment E5 — Theorem 3.6 (small beta: fast mixing). Port of
// bench/exp_t36_small_beta; stdout unchanged on defaults.
//
// claim: if beta <= c/(n * deltaPhi) with c < 1, then t_mix = O(n log n),
// with the path-coupling constant n(log n + log 1/eps)/(1-c).
#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/potential_stats.hpp"
#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "games/plateau.hpp"
#include "games/random_potential.hpp"
#include "rng/rng.hpp"
#include "scenario/experiments.hpp"
#include "scenario/harness.hpp"
#include "support/error.hpp"

namespace logitdyn::scenario {
namespace {

void run(const ScenarioSpec& spec, const RunOptions& opts, Report& report) {
  report.header(
      "E5: small-beta regime (Theorem 3.6)",
      "claim: beta <= c/(n*deltaPhi), c = 1/2  =>  t_mix <= n(log n + "
      "log 4)/(1-c) = O(n log n)");

  // Every beta here is derived from the Theorem 3.6 regime
  // (beta = c/(n*deltaPhi)); a user-supplied grid cannot apply, so reject
  // it rather than record a grid the measurements never used.
  if (!opts.beta_grid.empty()) {
    throw Error(
        "t36_small_beta derives beta from the Theorem 3.6 regime; "
        "--beta-grid does not apply");
  }
  const double c_const = 0.5;
  const double l = spec.params.at("local_variation").as_double();

  report.section("plateau games at beta = c/(n*deltaPhi)");
  ReportTable& table =
      report.table({"n", "|S|", "beta", "t_mix", "n log n",
                    "t_mix/(n log n)", "thm 3.6 bound", "holds"});
  for (int n : opts.smoke ? std::vector<int>{4, 6}
                          : std::vector<int>{4, 6, 8, 10}) {
    PlateauGame game(n, double(n) / 2.0, l);
    const std::vector<double> phi = potential_table(game);
    const PotentialStats stats = potential_stats(game.space(), phi);
    const double beta = c_const / (double(n) * stats.local_variation);
    LogitChain chain(game, beta);
    const MixingResult mix = harness::exact_tmix(chain);
    const double nlogn = double(n) * std::log(double(n));
    const double bound = bounds::thm36_tmix_upper(n, c_const, 0.25);
    table.row()
        .cell(n)
        .cell(size_t(1) << n)
        .cell(beta, 4)
        .cell(harness::tmix_cell(mix))
        .cell(nlogn, 1)
        .cell(double(mix.time) / nlogn, 3)
        .cell(bound, 1)
        .cell(double(mix.time) <= bound ? "yes" : "NO");
  }
  table.print();

  report.section("random potential games (m = 2) at admissible beta");
  const uint64_t seed = opts.seed_or(11);
  report.record_seed("random_potential", seed);
  Rng rng(seed);
  ReportTable& table2 =
      report.table({"n", "deltaPhi", "beta", "t_mix", "thm 3.6 bound",
                    "holds"});
  for (int n : opts.smoke ? std::vector<int>{4} : std::vector<int>{4, 6, 8}) {
    const TablePotentialGame game =
        make_random_potential_game(ProfileSpace(n, 2), 2.0, rng);
    const std::vector<double> phi(game.potential_table().begin(),
                                  game.potential_table().end());
    const PotentialStats stats = potential_stats(game.space(), phi);
    const double beta = c_const / (double(n) * stats.local_variation);
    LogitChain chain(game, beta);
    const MixingResult mix = harness::exact_tmix(chain);
    const double bound = bounds::thm36_tmix_upper(n, c_const, 0.25);
    table2.row()
        .cell(n)
        .cell(stats.local_variation, 3)
        .cell(beta, 4)
        .cell(harness::tmix_cell(mix))
        .cell(bound, 1)
        .cell(double(mix.time) <= bound ? "yes" : "NO");
  }
  table2.print();

  if (opts.smoke) return;

  report.section(
      "contrast: same plateau game, beta just above the regime (10x)");
  ReportTable& table3 =
      report.table({"n", "beta_small", "t_mix_small", "beta_large(10x)",
                    "t_mix_large"});
  for (int n : {6, 8}) {
    PlateauGame game(n, double(n) / 2.0, l);
    const std::vector<double> phi = potential_table(game);
    const PotentialStats stats = potential_stats(game.space(), phi);
    const double beta = c_const / (double(n) * stats.local_variation);
    // One chain for both regimes: set_beta replaces per-beta rebuilds.
    LogitChain chain(game, beta);
    const MixingResult small = harness::exact_tmix(chain);
    chain.set_beta(10.0 * beta);
    const MixingResult large = harness::exact_tmix(chain);
    table3.row()
        .cell(n)
        .cell(beta, 4)
        .cell(harness::tmix_cell(small))
        .cell(10.0 * beta, 4)
        .cell(harness::tmix_cell(large));
  }
  table3.print();
}

}  // namespace

void register_t36_small_beta(ExperimentRegistry& reg) {
  ScenarioSpec spec;
  spec.family = "plateau";
  spec.n = 10;
  spec.params.set("local_variation", 1.0);
  reg.add({"t36_small_beta", "E5: small-beta regime (Theorem 3.6)",
           "beta <= c/(n*deltaPhi), c = 1/2  =>  t_mix <= n(log n + "
           "log 4)/(1-c) = O(n log n)",
           spec, run});
}

}  // namespace logitdyn::scenario
