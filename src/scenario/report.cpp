#include "scenario/report.hpp"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "support/error.hpp"
#include "support/isa.hpp"

#ifndef LOGITDYN_GIT_SHA
#define LOGITDYN_GIT_SHA "unknown"
#endif

namespace logitdyn::scenario {

// ------------------------------------------------------------ ReportTable

ReportTable::ReportTable(Report* report, std::vector<std::string> headers)
    : report_(report), table_(headers), headers_(std::move(headers)) {}

ReportTable& ReportTable::row() {
  table_.row();
  rows_.emplace_back();
  return *this;
}

ReportTable& ReportTable::cell(const std::string& value) {
  table_.cell(value);
  rows_.back().push_back(Json(value));
  return *this;
}

ReportTable& ReportTable::cell(const char* value) {
  return cell(std::string(value));
}

ReportTable& ReportTable::cell(double value, int precision) {
  table_.cell(value, precision);
  rows_.back().push_back(Json(value));
  return *this;
}

ReportTable& ReportTable::cell(int64_t value) {
  table_.cell(value);
  rows_.back().push_back(Json(value));
  return *this;
}

ReportTable& ReportTable::cell(size_t value) {
  table_.cell(value);
  rows_.back().push_back(Json(uint64_t(value)));
  return *this;
}

ReportTable& ReportTable::cell_sci(double value, int precision) {
  table_.cell_sci(value, precision);
  rows_.back().push_back(Json(value));
  return *this;
}

void ReportTable::print() {
  if (report_->echo()) table_.print(*report_->echo());
}

Json ReportTable::to_json() const {
  Json headers = Json::array();
  for (const std::string& h : headers_) headers.push_back(Json(h));
  Json rows = Json::array();
  for (const std::vector<Json>& row : rows_) {
    // A row abandoned mid-fill (a RunControl interrupt unwound the
    // experiment between cells) would disagree with the headers and fail
    // validation — drop it; the completed rows stand as the partial
    // result (DESIGN.md §14).
    if (row.size() != headers_.size()) continue;
    Json r = Json::array();
    for (const Json& cell : row) r.push_back(cell);
    rows.push_back(std::move(r));
  }
  Json j = Json::object();
  j.set("headers", std::move(headers));
  j.set("rows", std::move(rows));
  return j;
}

// ------------------------------------------------------------- RunOptions

Json RunOptions::to_json() const {
  Json j = Json::object();
  if (seed) j.set("seed", *seed);
  if (!beta_grid.empty()) {
    Json grid = Json::array();
    for (double b : beta_grid) grid.push_back(Json(b));
    j.set("beta_grid", std::move(grid));
  }
  j.set("smoke", smoke);
  if (threads != 0) j.set("threads", threads);
  if (deadline_s > 0.0) j.set("deadline_s", deadline_s);
  if (!checkpoint_path.empty()) j.set("checkpoint_path", checkpoint_path);
  if (checkpoint_every > 0) j.set("checkpoint_every", checkpoint_every);
  if (!resume_path.empty()) j.set("resume_path", resume_path);
  return j;
}

// ----------------------------------------------------------------- Report

Report::Report(std::string name)
    : name_(std::move(name)), echo_(&std::cout) {
  sections_.emplace_back();  // implicit untitled section
}

Report::Section& Report::current() { return sections_.back(); }

void Report::header(const std::string& title, const std::string& claim) {
  title_ = title;
  claim_ = claim;
  if (echo_) {
    *echo_ << "\n==================================================\n"
           << title << "\n"
           << claim << "\n"
           << "==================================================\n";
  }
}

void Report::section(const std::string& title, bool print_banner) {
  sections_.emplace_back();
  sections_.back().title = title;
  if (echo_ && print_banner) *echo_ << "\n--- " << title << " ---\n";
}

ReportTable& Report::table(std::vector<std::string> headers) {
  current().tables.emplace_back(
      new ReportTable(this, std::move(headers)));
  return *current().tables.back();
}

void Report::note(const std::string& text) {
  current().notes.push_back(text);
  if (echo_) *echo_ << text << "\n";
}

void Report::record_fit(const std::string& name, const LineFit& fit,
                        double predicted_rate) {
  Json j = Json::object();
  j.set("name", name);
  j.set("slope", fit.slope);
  j.set("intercept", fit.intercept);
  j.set("r2", fit.r2);
  j.set("predicted_rate", predicted_rate);
  current().fits.push_back(std::move(j));
}

void Report::record_value(const std::string& name, Json value) {
  current().values.set(name, std::move(value));
}

void Report::record_seed(const std::string& name, uint64_t seed) {
  // JSON numbers are doubles: seeds above 2^53 would be silently rounded
  // in the reproducibility record, so store those as decimal strings.
  if (seed <= (uint64_t(1) << 53)) {
    seeds_.set(name, seed);
  } else {
    seeds_.set(name, std::to_string(seed));
  }
}

void Report::set_run_status(RunStatus status, const std::string& detail) {
  status_set_ = true;
  if (uint8_t(status) > uint8_t(status_)) status_ = status;
  if (!detail.empty()) status_detail_.push_back(detail);
}

void Report::set_status_counters(Json work, Json certified) {
  status_set_ = true;
  status_work_ = std::move(work);
  status_certified_ = std::move(certified);
}

void Report::set_resumed_from(const std::string& path) {
  status_set_ = true;
  status_resumed_from_ = path;
}

Json Report::to_json() const {
  Json config = Json::object();
  config.set("title", title_);
  config.set("claim", claim_);
  if (scenario_.is_object()) config.set("scenario", scenario_);
  if (options_.is_object()) config.set("options", options_);
  if (seeds_.size() > 0) config.set("seeds", seeds_);

  Json sections = Json::array();
  for (const Section& s : sections_) {
    // Skip an empty implicit preamble so documents stay minimal.
    if (s.title.empty() && s.tables.empty() && s.notes.empty() &&
        s.fits.size() == 0 && s.values.size() == 0) {
      continue;
    }
    Json sec = Json::object();
    sec.set("title", s.title);
    Json tables = Json::array();
    for (const auto& t : s.tables) tables.push_back(t->to_json());
    sec.set("tables", std::move(tables));
    Json notes = Json::array();
    for (const std::string& n : s.notes) notes.push_back(Json(n));
    sec.set("notes", std::move(notes));
    sec.set("fits", s.fits);
    sec.set("values", s.values);
    sections.push_back(std::move(sec));
  }
  Json measurements = Json::object();
  measurements.set("sections", std::move(sections));
  Json doc = make_document("experiment", name_, std::move(config),
                           std::move(measurements));
  // Status block (DESIGN.md §14): additive — the validator accepts its
  // absence, so pre-§14 readers and goldens are untouched.
  if (status_set_) {
    Json status = Json::object();
    status.set("state", run_status_name(status_));
    if (!status_resumed_from_.empty()) {
      status.set("resumed_from", status_resumed_from_);
    }
    if (!status_detail_.empty()) {
      Json detail = Json::array();
      for (const std::string& d : status_detail_) detail.push_back(Json(d));
      status.set("detail", std::move(detail));
    }
    if (status_work_.is_object() && status_work_.size() > 0) {
      status.set("work", status_work_);
    }
    if (status_certified_.is_object() && status_certified_.size() > 0) {
      status.set("last_certified", status_certified_);
    }
    doc.set("status", std::move(status));
  }
  return doc;
}

// ------------------------------------------------------ shared documents

Json environment_json() {
  Json env = Json::object();
  const char* sha = std::getenv("LOGITDYN_GIT_SHA");
  env.set("git_sha", sha && *sha ? sha : LOGITDYN_GIT_SHA);
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  char buf[32];
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  env.set("timestamp", std::string(buf));
  env.set("threads",
          uint64_t(std::max(1u, std::thread::hardware_concurrency())));
  // The ISA tier the dispatched kernels actually ran at (DESIGN.md §12):
  // wall times from different tiers are not comparable, so perf_diff
  // skips wall-time gates when this differs between runs.
  env.set("simd_isa", std::string(isa_path_name(active_isa_path())));
  // Peak resident set size — the context that makes sampling-scale BENCH
  // rows (10^6+ players) interpretable. Linux-only (/proc/self/status
  // VmHWM); the key is simply absent elsewhere, and the validator treats
  // it as an additive field.
  if (std::ifstream status("/proc/self/status"); status) {
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("VmHWM:", 0) != 0) continue;
      std::istringstream fields(line.substr(6));
      double kb = 0.0;
      if (fields >> kb && kb > 0.0) env.set("peak_rss_mb", kb / 1024.0);
      break;
    }
  }
  return env;
}

Json make_document(const std::string& kind, const std::string& name,
                   Json config, Json measurements) {
  Json doc = Json::object();
  doc.set("schema_version", 1);
  doc.set("kind", kind);
  doc.set("name", name);
  doc.set("config", std::move(config));
  doc.set("environment", environment_json());
  doc.set("measurements", std::move(measurements));
  return doc;
}

// -------------------------------------------------------------- validator

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

bool validate_experiment_measurements(const Json& m, std::string* error) {
  const Json* sections = m.find("sections");
  if (!sections || !sections->is_array()) {
    return fail(error, "experiment measurements need a \"sections\" array");
  }
  for (size_t s = 0; s < sections->size(); ++s) {
    const Json& sec = sections->at(s);
    const std::string where = "sections[" + std::to_string(s) + "]";
    if (!sec.is_object()) return fail(error, where + " is not an object");
    const Json* title = sec.find("title");
    if (!title || !title->is_string()) {
      return fail(error, where + " needs a string \"title\"");
    }
    const Json* tables = sec.find("tables");
    if (!tables || !tables->is_array()) {
      return fail(error, where + " needs a \"tables\" array");
    }
    for (size_t t = 0; t < tables->size(); ++t) {
      const Json& table = tables->at(t);
      const std::string twhere = where + ".tables[" + std::to_string(t) + "]";
      if (!table.is_object()) return fail(error, twhere + " is not an object");
      const Json* headers = table.find("headers");
      const Json* rows = table.find("rows");
      if (!headers || !headers->is_array() || !rows || !rows->is_array()) {
        return fail(error, twhere + " needs \"headers\" and \"rows\" arrays");
      }
      for (size_t r = 0; r < rows->size(); ++r) {
        if (!rows->at(r).is_array() ||
            rows->at(r).size() != headers->size()) {
          return fail(error, twhere + ".rows[" + std::to_string(r) +
                                 "] length disagrees with headers");
        }
      }
    }
    const Json* notes = sec.find("notes");
    if (!notes || !notes->is_array()) {
      return fail(error, where + " needs a \"notes\" array");
    }
    const Json* fits = sec.find("fits");
    if (!fits || !fits->is_array()) {
      return fail(error, where + " needs a \"fits\" array");
    }
    for (size_t f = 0; f < fits->size(); ++f) {
      const Json& fit = fits->at(f);
      if (!fit.is_object() || !fit.contains("name") ||
          !fit.contains("slope") || !fit.contains("r2")) {
        return fail(error, where + ".fits[" + std::to_string(f) +
                               "] needs name/slope/r2");
      }
    }
    const Json* values = sec.find("values");
    if (!values || !values->is_object()) {
      return fail(error, where + " needs a \"values\" object");
    }
  }
  return true;
}

bool validate_document(const Json& doc, std::string* error, int depth);

bool validate_sweep_measurements(const Json& m, std::string* error) {
  const Json* runs = m.find("runs");
  if (!runs || !runs->is_array()) {
    return fail(error, "experiment_sweep measurements need a \"runs\" array");
  }
  for (size_t r = 0; r < runs->size(); ++r) {
    std::string inner;
    if (!validate_document(runs->at(r), &inner, 1)) {
      return fail(error, "runs[" + std::to_string(r) + "]: " + inner);
    }
  }
  return true;
}

bool validate_document(const Json& doc, std::string* error, int depth) {
  if (!doc.is_object()) return fail(error, "document is not a JSON object");
  const Json* version = doc.find("schema_version");
  if (!version || !version->is_number() || version->as_int() != 1) {
    return fail(error, "schema_version must be 1");
  }
  const Json* kind = doc.find("kind");
  if (!kind || !kind->is_string()) {
    return fail(error, "missing string \"kind\"");
  }
  const Json* name = doc.find("name");
  if (!name || !name->is_string() || name->as_string().empty()) {
    return fail(error, "missing non-empty string \"name\"");
  }
  const Json* config = doc.find("config");
  if (!config || !config->is_object()) {
    return fail(error, "missing \"config\" object");
  }
  const Json* env = doc.find("environment");
  if (!env || !env->is_object()) {
    return fail(error, "missing \"environment\" object");
  }
  for (const char* key : {"git_sha", "timestamp"}) {
    const Json* v = env->find(key);
    if (!v || !v->is_string()) {
      return fail(error, std::string("environment needs string \"") + key +
                             "\"");
    }
  }
  if (!env->contains("threads") || !env->at("threads").is_number()) {
    return fail(error, "environment needs numeric \"threads\"");
  }
  const Json* measurements = doc.find("measurements");
  if (!measurements || !measurements->is_object()) {
    return fail(error, "missing \"measurements\" object");
  }
  // Optional status block (DESIGN.md §14) — absent on pre-§14 documents.
  if (const Json* status = doc.find("status")) {
    if (!status->is_object()) {
      return fail(error, "\"status\" must be an object");
    }
    const Json* state = status->find("state");
    if (!state || !state->is_string()) {
      return fail(error, "status needs a string \"state\"");
    }
    const std::string& s = state->as_string();
    if (s != "completed" && s != "degraded" && s != "deadline" &&
        s != "cancelled" && s != "failed") {
      return fail(error, "unknown status.state \"" + s + "\"");
    }
    if (const Json* detail = status->find("detail")) {
      if (!detail->is_array()) {
        return fail(error, "status.detail must be an array");
      }
      for (size_t d = 0; d < detail->size(); ++d) {
        if (!detail->at(d).is_string()) {
          return fail(error,
                      "status.detail[" + std::to_string(d) + "] not a string");
        }
      }
    }
    // Optional resume provenance (DESIGN.md §16): the checkpoint file a
    // restarted daemon resumed this run from.
    if (const Json* resumed = status->find("resumed_from")) {
      if (!resumed->is_string() || resumed->as_string().empty()) {
        return fail(error, "status.resumed_from must be a non-empty string");
      }
    }
  }
  const std::string& k = kind->as_string();
  if (k == "experiment") {
    return validate_experiment_measurements(*measurements, error);
  }
  if (k == "bench") {
    const Json* results = measurements->find("results");
    if (!results || !results->is_array()) {
      return fail(error, "bench measurements need a \"results\" array");
    }
    for (size_t r = 0; r < results->size(); ++r) {
      if (!results->at(r).is_object()) {
        return fail(error,
                    "results[" + std::to_string(r) + "] is not an object");
      }
    }
    return true;
  }
  if (k == "experiment_sweep") {
    if (depth > 0) return fail(error, "nested experiment_sweep");
    return validate_sweep_measurements(*measurements, error);
  }
  return fail(error, "unknown kind \"" + k + "\"");
}

}  // namespace

bool validate_report_json(const Json& doc, std::string* error) {
  return validate_document(doc, error, 0);
}

}  // namespace logitdyn::scenario
