#include "scenario/registry.hpp"

#include <cstdlib>
#include <iostream>
#include <memory>

#include "support/error.hpp"
#include "support/math.hpp"
#include "support/run_control.hpp"

namespace logitdyn::scenario {

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry* reg = [] {
    auto* r = new ExperimentRegistry();
    register_builtin_experiments(*r);
    // Freeze before the magic-static guard releases: every later caller —
    // including the service scheduler's concurrent run() workers — sees an
    // immutable registry (DESIGN.md §15).
    r->freeze();
    return r;
  }();
  return *reg;
}

void ExperimentRegistry::add(ExperimentInfo info) {
  LD_CHECK(!frozen_,
           "ExperimentRegistry is frozen (register experiments before the "
           "first instance() lookup)");
  LD_CHECK(!info.name.empty(), "experiment name must be non-empty");
  LD_CHECK(static_cast<bool>(info.run), "experiment \"", info.name,
           "\" has no run function");
  for (const ExperimentInfo& existing : experiments_) {
    LD_CHECK(existing.name != info.name, "duplicate experiment \"",
             info.name, "\"");
  }
  experiments_.push_back(std::move(info));
}

bool ExperimentRegistry::contains(const std::string& name) const {
  for (const ExperimentInfo& e : experiments_) {
    if (e.name == name) return true;
  }
  return false;
}

const ExperimentInfo& ExperimentRegistry::get(const std::string& name) const {
  for (const ExperimentInfo& e : experiments_) {
    if (e.name == name) return e;
  }
  std::string known;
  for (const ExperimentInfo& e : experiments_) {
    if (!known.empty()) known += ", ";
    known += e.name;
  }
  throw Error("unknown experiment \"" + name + "\" (known: " + known + ")");
}

std::vector<std::string> ExperimentRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(experiments_.size());
  for (const ExperimentInfo& e : experiments_) out.push_back(e.name);
  return out;
}

void ExperimentRegistry::run(const std::string& name,
                             const ScenarioSpec* spec, const RunOptions& opts,
                             Report& report) const {
  const ExperimentInfo& info = get(name);
  const ScenarioSpec chosen = spec ? *spec : info.default_scenario;
  // Validate up front so a bad spec fails before any compute (and so the
  // report records the fully-defaulted parameters actually used).
  const ScenarioSpec full = GameRegistry::instance().validated(chosen);
  report.set_scenario(full.to_json());
  report.set_options(opts.to_json());
  report.set_title_claim(info.title, info.claim);

  // Run-control plumbing (DESIGN.md §14): arm a deadline when asked, run
  // the fast_exp defect gate so degraded kernels are reported as such, and
  // turn an interrupt anywhere inside the experiment into a partial report
  // with a status block instead of a lost run.
  RunOptions effective = opts;
  std::unique_ptr<RunControl> owned;
  if (effective.control == nullptr && effective.deadline_s > 0.0) {
    owned = std::make_unique<RunControl>();
    effective.control = owned.get();
  }
  if (effective.control != nullptr && effective.deadline_s > 0.0 &&
      !effective.control->has_deadline()) {
    effective.control->set_deadline_after(effective.deadline_s);
  }
  if (!fast_exp_gate_ok()) {
    report.set_run_status(
        RunStatus::kDegraded,
        "fast_exp defect gate tripped — softmax on scalar reference");
  }
  try {
    info.run(full, effective, report);
  } catch (const InterruptedError& e) {
    report.set_run_status(e.status(), e.what());
  }
  if (effective.control != nullptr) {
    if (effective.control->interrupted()) {
      report.set_run_status(effective.control->interrupt_status(),
                            effective.control->interrupt_detail());
    }
    report.set_status_counters(effective.control->work_json(),
                               effective.control->certified_json());
  }
  // Registry-run reports always carry a status block, even on the happy
  // path (set_run_status is a no-op on severity once anything worse than
  // kCompleted was merged above).
  report.set_run_status(RunStatus::kCompleted);
}

std::vector<double> parse_beta_list(const std::string& arg) {
  std::vector<double> betas;
  std::string::size_type pos = 0;
  while (pos <= arg.size()) {
    const std::string::size_type comma = arg.find(',', pos);
    const std::string tok =
        arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      char* end = nullptr;
      const double beta = std::strtod(tok.c_str(), &end);
      if (end != tok.c_str() + tok.size()) {
        throw Error("bad beta value: " + tok);
      }
      betas.push_back(beta);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (betas.empty()) throw Error("bad beta list: " + arg);
  return betas;
}

int run_registered_main(const std::string& name) {
  try {
    Report report(name);
    ExperimentRegistry::instance().run(name, nullptr, RunOptions{}, report);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace logitdyn::scenario
