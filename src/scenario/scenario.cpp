#include "scenario/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "games/congestion.hpp"
#include "games/coordination.hpp"
#include "games/dominant.hpp"
#include "games/graphical_coordination.hpp"
#include "games/ising.hpp"
#include "games/plateau.hpp"
#include "games/random_potential.hpp"
#include "games/table_game.hpp"
#include "graph/builders.hpp"
#include "rng/rng.hpp"
#include "support/error.hpp"

namespace logitdyn::scenario {

// ------------------------------------------------------------ ScenarioSpec

Json ScenarioSpec::to_json() const {
  Json j = Json::object();
  j.set("family", family);
  if (n != 0) j.set("n", n);
  if (params.is_object() && params.size() > 0) j.set("params", params);
  if (topology.is_object()) j.set("topology", topology);
  return j;
}

ScenarioSpec ScenarioSpec::from_json(const Json& j) {
  if (!j.is_object()) throw Error("scenario spec must be a JSON object");
  ScenarioSpec spec;
  spec.family = j.at("family").as_string();
  for (const auto& [key, value] : j.members()) {
    if (key == "family") {
      continue;
    } else if (key == "n") {
      spec.n = int(value.as_int());
    } else if (key == "params") {
      if (!value.is_object()) throw Error("scenario \"params\" must be an object");
      spec.params = value;
    } else if (key == "topology") {
      if (!value.is_object()) {
        throw Error("scenario \"topology\" must be an object");
      }
      spec.topology = value;
    } else {
      throw Error("unknown scenario key \"" + key + "\"");
    }
  }
  return spec;
}

std::string ScenarioSpec::canonical_hash() const {
  // FNV-1a 64 over the canonical serialization (sorted keys, value-level
  // number formatting) — the same fingerprint family the local layer uses
  // for trajectories (local/local_state strategy_hash).
  const std::string text = to_json().canonical_dump();
  uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= uint64_t(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)h);
  return buf;
}

std::string ScenarioSpec::summary() const {
  std::ostringstream os;
  os << family << "(";
  bool first = true;
  if (n != 0) {
    os << "n=" << n;
    first = false;
  }
  if (params.is_object()) {
    for (const auto& [key, value] : params.members()) {
      if (!first) os << ", ";
      first = false;
      os << key << "=" << value.dump(0);
    }
  }
  if (topology.is_object()) {
    if (!first) os << ", ";
    first = false;
    os << "topology=" << topology_summary(topology, n);
  }
  os << ")";
  return os.str();
}

// --------------------------------------------------------------- topology

namespace {

int64_t topo_int(const Json& topo, const std::string& key, int64_t fallback) {
  const Json* v = topo.find(key);
  return v ? v->as_int() : fallback;
}

}  // namespace

namespace {

/// Reject typo'd topology keys as loudly as family params are rejected.
void check_topology_keys(const Json& topology, const std::string& kind,
                         std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : topology.members()) {
    (void)value;
    if (key == "kind") continue;
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw Error("topology \"" + kind + "\" has no parameter \"" + key +
                  "\"");
    }
  }
}

}  // namespace

Graph build_topology(const Json& topology, uint32_t n) {
  if (!topology.is_object()) {
    throw Error("topology must be a JSON object with a \"kind\"");
  }
  const std::string kind = topology.at("kind").as_string();
  if (kind == "grid" || kind == "torus") {
    check_topology_keys(topology, kind, {"rows", "cols"});
  } else if (kind == "erdos_renyi") {
    check_topology_keys(topology, kind, {"n", "p", "seed"});
  } else if (kind == "random_regular") {
    check_topology_keys(topology, kind, {"n", "d", "seed"});
  } else {
    check_topology_keys(topology, kind, {"n"});
  }
  const uint32_t tn = uint32_t(topo_int(topology, "n", int64_t(n)));
  if (kind == "path") return make_path(tn);
  if (kind == "ring") return make_ring(tn);
  if (kind == "clique") return make_clique(tn);
  if (kind == "star") return make_star(tn);
  if (kind == "binary_tree") return make_binary_tree(tn);
  if (kind == "grid" || kind == "torus") {
    const int64_t rows = topo_int(topology, "rows", 0);
    const int64_t cols = topo_int(topology, "cols", 0);
    if (rows <= 0 || cols <= 0) {
      throw Error("topology \"" + kind + "\" needs positive rows and cols");
    }
    return kind == "grid" ? make_grid(uint32_t(rows), uint32_t(cols))
                          : make_torus(uint32_t(rows), uint32_t(cols));
  }
  if (kind == "erdos_renyi") {
    const Json* p = topology.find("p");
    if (!p) throw Error("topology \"erdos_renyi\" needs edge probability \"p\"");
    Rng rng(uint64_t(topo_int(topology, "seed", 1)));
    return make_erdos_renyi(tn, p->as_double(), rng);
  }
  if (kind == "random_regular") {
    const int64_t d = topo_int(topology, "d", 0);
    if (d <= 0) throw Error("topology \"random_regular\" needs degree \"d\"");
    Rng rng(uint64_t(topo_int(topology, "seed", 1)));
    return make_random_regular(tn, uint32_t(d), rng);
  }
  throw Error("unknown topology kind \"" + kind +
              "\" (expected path|ring|clique|star|grid|torus|binary_tree|"
              "erdos_renyi|random_regular)");
}

std::string topology_summary(const Json& topology, int n) {
  if (!topology.is_object()) return "none";
  const std::string kind = topology.at("kind").as_string();
  std::ostringstream os;
  os << kind;
  if (kind == "grid" || kind == "torus") {
    os << "(" << topo_int(topology, "rows", 0) << "x"
       << topo_int(topology, "cols", 0) << ")";
  } else {
    os << "(" << topo_int(topology, "n", n) << ")";
  }
  return os.str();
}

// ------------------------------------------------------------- validation

namespace {

const char* param_type_name(ParamSpec::Type t) {
  switch (t) {
    case ParamSpec::Type::kBool: return "bool";
    case ParamSpec::Type::kInt: return "int";
    case ParamSpec::Type::kNumber: return "number";
    case ParamSpec::Type::kString: return "string";
    case ParamSpec::Type::kArray: return "array";
  }
  return "?";
}

bool param_type_matches(ParamSpec::Type t, const Json& v) {
  switch (t) {
    case ParamSpec::Type::kBool: return v.is_bool();
    case ParamSpec::Type::kInt:
      return v.is_number() && v.as_double() == std::floor(v.as_double());
    case ParamSpec::Type::kNumber: return v.is_number();
    case ParamSpec::Type::kString: return v.is_string();
    case ParamSpec::Type::kArray: return v.is_array();
  }
  return false;
}

// Shorthand builders for the family tables below.
ParamSpec num_param(const std::string& name, double def,
                    const std::string& desc) {
  return {name, ParamSpec::Type::kNumber, false, Json(def), desc};
}
ParamSpec int_param(const std::string& name, int64_t def,
                    const std::string& desc, double min_value = -1e308) {
  return {name, ParamSpec::Type::kInt, false, Json(def), desc, min_value};
}

double pnum(const ScenarioSpec& spec, const std::string& key) {
  return spec.params.at(key).as_double();
}
int64_t pint(const ScenarioSpec& spec, const std::string& key) {
  return spec.params.at(key).as_int();
}

Json ring_topology() {
  Json t = Json::object();
  t.set("kind", "ring");
  return t;
}

// ----------------------------------------------------- family factories

std::unique_ptr<Game> make_coordination(const ScenarioSpec& spec) {
  if (spec.n != 0 && spec.n != 2) {
    throw Error("family \"coordination\" is a 2-player game (got n = " +
                std::to_string(spec.n) + ")");
  }
  return std::make_unique<CoordinationGame>(CoordinationPayoffs::from_deltas(
      pnum(spec, "delta0"), pnum(spec, "delta1")));
}

std::unique_ptr<Game> make_graphical_coordination(const ScenarioSpec& spec) {
  return std::make_unique<GraphicalCoordinationGame>(
      build_topology(spec.topology, uint32_t(spec.n)),
      CoordinationPayoffs::from_deltas(pnum(spec, "delta0"),
                                       pnum(spec, "delta1")));
}

std::unique_ptr<Game> make_ising(const ScenarioSpec& spec) {
  return std::make_unique<IsingGame>(
      build_topology(spec.topology, uint32_t(spec.n)),
      pnum(spec, "coupling"), pnum(spec, "field"));
}

std::vector<double> param_per_resource(const ScenarioSpec& spec,
                                       const std::string& key,
                                       size_t resources) {
  const Json& v = spec.params.at(key);
  std::vector<double> out(resources);
  if (v.is_number()) {
    for (double& x : out) x = v.as_double();
    return out;
  }
  if (v.size() != resources) {
    throw Error("congestion param \"" + key + "\" must have one entry per "
                "link (" + std::to_string(resources) + ")");
  }
  for (size_t r = 0; r < resources; ++r) out[r] = v.at(r).as_double();
  return out;
}

std::unique_ptr<Game> make_congestion(const ScenarioSpec& spec) {
  const std::string variant = spec.params.at("variant").as_string();
  const int n = spec.n;
  if (variant == "parallel_links") {
    const size_t links = size_t(pint(spec, "links"));
    return std::make_unique<CongestionGame>(make_parallel_links_game(
        n, param_per_resource(spec, "slope", links),
        param_per_resource(spec, "offset", links)));
  }
  if (variant == "routes") {
    // The bench workload: each player picks one of two route-like subsets
    // (size route_len, shifted per player) of `resources` shared
    // resources, with latency[r][k] = 0.25 * (r + 1) * (k + 1).
    const int r = int(pint(spec, "resources"));
    const int route_len = int(pint(spec, "route_len"));
    // The stride-2 construction below visits resources (2k + i) mod r; a
    // route may not contain a resource twice (loads would double-count
    // and latency[r] would be read past its n entries), which needs
    // 2 * route_len <= resources.
    if (2 * route_len > r) {
      throw Error("congestion: routes needs 2 * route_len <= resources");
    }
    std::vector<std::vector<std::vector<int>>> strategies(
        static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::vector<int> even, odd;
      for (int k = 0; k < route_len; ++k) {
        even.push_back((2 * k + i) % r);
        odd.push_back((2 * k + 1 + i) % r);
      }
      strategies[size_t(i)] = {even, odd};
    }
    std::vector<std::vector<double>> latency(static_cast<size_t>(r));
    for (int j = 0; j < r; ++j) {
      latency[size_t(j)].resize(size_t(n));
      for (int k = 1; k <= n; ++k) {
        latency[size_t(j)][size_t(k - 1)] = 0.25 * double(j + 1) * double(k);
      }
    }
    return std::make_unique<CongestionGame>(r, std::move(strategies),
                                            std::move(latency));
  }
  throw Error("congestion variant must be \"parallel_links\" or \"routes\", "
              "got \"" + variant + "\"");
}

std::unique_ptr<Game> make_plateau(const ScenarioSpec& spec) {
  const Json* g = spec.params.find("global_variation");
  const double gv = g && !g->is_null() ? g->as_double() : double(spec.n) / 2.0;
  return std::make_unique<PlateauGame>(spec.n, gv,
                                       pnum(spec, "local_variation"));
}

std::unique_ptr<Game> make_dominant(const ScenarioSpec& spec) {
  return std::make_unique<AllOrNothingGame>(
      spec.n, int32_t(pint(spec, "strategies")));
}

std::unique_ptr<Game> make_dominance(const ScenarioSpec& spec) {
  // Guessing game ("beauty contest"): strategies 0..m-1, payoff
  // -(x_i - factor * mean of the others)^2. With factor < 1 iterated
  // elimination removes the top strategies round by round and leaves the
  // all-zeros profile — the classic dominance-solvable family.
  const int32_t m = int32_t(pint(spec, "strategies"));
  const double factor = pnum(spec, "factor");
  if (m < 2) throw Error("dominance: strategies must be >= 2");
  if (factor <= 0.0 || factor >= 1.0) {
    throw Error("dominance: factor must be in (0, 1)");
  }
  const int n = spec.n;
  const ProfileSpace space(n, m);
  return std::make_unique<TableGame>(TableGame::from_function(
      space,
      [n, factor](int player, const Profile& x) {
        double sum = 0.0;
        for (size_t j = 0; j < x.size(); ++j) {
          if (int(j) != player) sum += double(x[j]);
        }
        const double target = factor * sum / double(std::max(1, n - 1));
        const double miss = double(x[size_t(player)]) - target;
        return -miss * miss;
      },
      "guessing-" + std::to_string(n) + "p" + std::to_string(m) + "s"));
}

std::unique_ptr<Game> make_random_potential(const ScenarioSpec& spec) {
  const ProfileSpace space(spec.n, int32_t(pint(spec, "strategies")));
  const double range = pnum(spec, "range");
  Rng rng(uint64_t(pint(spec, "seed")));
  if (spec.params.at("general").as_bool()) {
    return std::make_unique<TableGame>(make_random_game(space, range, rng));
  }
  return std::make_unique<TablePotentialGame>(
      make_random_potential_game(space, range, rng));
}

ProfileSpace table_space(const ScenarioSpec& spec) {
  const Json& strategies = spec.params.at("strategies");
  if (strategies.is_number()) {
    if (spec.n <= 0) throw Error("table: n must be positive");
    return ProfileSpace(spec.n, int32_t(strategies.as_int()));
  }
  std::vector<int32_t> sizes;
  for (size_t i = 0; i < strategies.size(); ++i) {
    sizes.push_back(int32_t(strategies.at(i).as_int()));
  }
  if (spec.n != 0 && size_t(spec.n) != sizes.size()) {
    throw Error("table: n disagrees with the strategies array length");
  }
  return ProfileSpace(std::move(sizes));
}

std::unique_ptr<Game> make_table(const ScenarioSpec& spec) {
  const ProfileSpace space = table_space(spec);
  const Json* name = spec.params.find("name");
  const std::string game_name =
      name && name->is_string() ? name->as_string() : "table-game";
  const Json* potential = spec.params.find("potential");
  const Json* utilities = spec.params.find("utilities");
  if ((potential != nullptr) == (utilities != nullptr)) {
    throw Error(
        "table: exactly one of \"potential\" (array of |S| values) or "
        "\"utilities\" (one array of |S| values per player) is required");
  }
  if (potential) {
    if (potential->size() != space.num_profiles()) {
      throw Error("table: potential must have |S| = " +
                  std::to_string(space.num_profiles()) + " entries, got " +
                  std::to_string(potential->size()));
    }
    std::vector<double> phi(space.num_profiles());
    for (size_t i = 0; i < phi.size(); ++i) phi[i] = potential->at(i).as_double();
    return std::make_unique<TablePotentialGame>(space, std::move(phi),
                                                game_name);
  }
  if (utilities->size() != size_t(space.num_players())) {
    throw Error("table: utilities must have one array per player");
  }
  std::vector<std::vector<double>> u(utilities->size());
  for (size_t p = 0; p < u.size(); ++p) {
    const Json& row = utilities->at(p);
    if (row.size() != space.num_profiles()) {
      throw Error("table: utilities[" + std::to_string(p) +
                  "] must have |S| = " + std::to_string(space.num_profiles()) +
                  " entries");
    }
    u[p].resize(space.num_profiles());
    for (size_t i = 0; i < u[p].size(); ++i) u[p][i] = row.at(i).as_double();
  }
  return std::make_unique<TableGame>(space, std::move(u), game_name);
}

// ----------------------------------------------------- built-in catalogue

void register_builtin_families(GameRegistry& reg) {
  reg.register_family(
      {"coordination",
       "the paper's 2x2 coordination game (Eq. (10)); always 2 players",
       {num_param("delta0", 3.0, "equilibrium gap of (0,0): a - d"),
        num_param("delta1", 1.0, "equilibrium gap of (1,1): b - c")},
       false,
       Json(),
       2,
       make_coordination});
  reg.register_family(
      {"graphical_coordination",
       "2x2 coordination on every edge of a social graph (paper Sect. 5)",
       {num_param("delta0", 1.0, "per-edge gap of (0,0)"),
        num_param("delta1", 1.0, "per-edge gap of (1,1)")},
       true,
       ring_topology(),
       6,
       make_graphical_coordination});
  reg.register_family(
      {"ising",
       "Ising model on a graph; its Glauber dynamics IS logit dynamics on "
       "a coordination game with delta0 = delta1 = 2J",
       {num_param("coupling", 0.8, "ferromagnetic coupling J"),
        num_param("field", 0.0, "external field h")},
       true,
       ring_topology(),
       6,
       make_ising});
  reg.register_family(
      {"congestion",
       "congestion game with Rosenthal potential; variant parallel_links "
       "(n identical players on m linear-latency links) or routes (the "
       "bench workload: two shifted route subsets per player)",
       {{"variant", ParamSpec::Type::kString, false, Json("parallel_links"),
         "parallel_links | routes"},
        int_param("links", 8, "parallel_links: number of links", 1),
        {"slope", ParamSpec::Type::kNumber, false, Json(1.0),
         "parallel_links: latency slope per link (number or array)",
         -1e308, /*allow_array=*/true},
        {"offset", ParamSpec::Type::kNumber, false, Json(0.5),
         "parallel_links: latency offset per link (number or array)",
         -1e308, /*allow_array=*/true},
        int_param("resources", 16, "routes: shared resource count", 1),
        int_param("route_len", 8, "routes: resources per route", 1)},
       false,
       Json(),
       10,
       make_congestion});
  reg.register_family(
      {"plateau",
       "the Theorem 3.5 lower-bound family: Phi = -l*min{c, |c - w(x)|} on "
       "{0,1}^n with barrier height g = DeltaPhi",
       {{"global_variation", ParamSpec::Type::kNumber, false, Json(),
         "barrier height g (default n/2; g/l must be a positive integer)"},
        num_param("local_variation", 1.0, "per-move variation l")},
       false,
       Json(),
       6,
       make_plateau});
  reg.register_family(
      {"dominance",
       "dominance-solvable guessing game: u_i = -(x_i - factor * mean of "
       "others)^2; iterated elimination leaves all-zeros",
       {int_param("strategies", 3, "strategies per player", 2),
        num_param("factor", 0.4, "target factor in (0, 1)")},
       false,
       Json(),
       2,
       make_dominance});
  reg.register_family(
      {"dominant",
       "the Theorem 4.3 all-or-nothing game: strategy 0 weakly dominant, "
       "t_mix = Theta(m^{n-1}) yet bounded in beta",
       {int_param("strategies", 2, "strategies per player m", 2)},
       false,
       Json(),
       6,
       make_dominant});
  reg.register_family(
      {"random_potential",
       "random table game: i.i.d. Uniform[0, range] potential (or, with "
       "general=true, i.i.d. utilities — almost surely not potential)",
       {int_param("strategies", 2, "strategies per player m", 2),
        num_param("range", 2.0, "potential/utility range"),
        int_param("seed", 1, "generator seed", 0),
        {"general", ParamSpec::Type::kBool, false, Json(false),
         "true: general (non-potential) random game"}},
       false,
       Json(),
       4,
       make_random_potential});
  reg.register_family(
      {"table",
       "explicit-table game: a potential array (identical-interest) or one "
       "utility array per player, indexed by the encoded profile",
       {{"strategies", ParamSpec::Type::kInt, true, Json(),
         "strategies per player (int, or array of per-player counts)",
         1.0, /*allow_array=*/true},
        {"potential", ParamSpec::Type::kArray, false, Json(),
         "length-|S| potential table"},
        {"utilities", ParamSpec::Type::kArray, false, Json(),
         "per-player length-|S| utility tables"},
        {"name", ParamSpec::Type::kString, false, Json("table-game"),
         "display name"}},
       false,
       Json(),
       2,
       make_table});
}

}  // namespace

// ------------------------------------------------------------ GameRegistry

GameRegistry& GameRegistry::instance() {
  // Magic-static initialization is thread-safe; the freeze() at the end
  // makes every later lookup a read over immutable storage, so concurrent
  // validated()/make_game() calls (the daemon's scheduler workers) need
  // no locking.
  static GameRegistry* reg = [] {
    auto* r = new GameRegistry();
    register_builtin_families(*r);
    r->freeze();
    return r;
  }();
  return *reg;
}

void GameRegistry::register_family(FamilyInfo info) {
  LD_CHECK(!frozen_, "GameRegistry is frozen (register families before the "
                     "first instance() lookup)");
  LD_CHECK(!info.name.empty(), "family name must be non-empty");
  for (const FamilyInfo& existing : families_) {
    LD_CHECK(existing.name != info.name, "duplicate game family \"",
             info.name, "\"");
  }
  families_.push_back(std::move(info));
}

bool GameRegistry::contains(const std::string& family) const {
  for (const FamilyInfo& f : families_) {
    if (f.name == family) return true;
  }
  return false;
}

const FamilyInfo& GameRegistry::family(const std::string& name) const {
  for (const FamilyInfo& f : families_) {
    if (f.name == name) return f;
  }
  std::string known;
  for (const FamilyInfo& f : families_) {
    if (!known.empty()) known += ", ";
    known += f.name;
  }
  throw Error("unknown game family \"" + name + "\" (known: " + known + ")");
}

std::vector<std::string> GameRegistry::families() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const FamilyInfo& f : families_) names.push_back(f.name);
  return names;
}

ScenarioSpec GameRegistry::validated(const ScenarioSpec& spec) const {
  const FamilyInfo& info = family(spec.family);
  ScenarioSpec out = spec;
  if (out.n < 0) throw Error("scenario n must be positive");
  if (!out.params.is_object()) out.params = Json::object();

  // Unknown keys are errors: a typo'd parameter must not silently become
  // a family default.
  for (const auto& [key, value] : out.params.members()) {
    const ParamSpec* match = nullptr;
    for (const ParamSpec& p : info.params) {
      if (p.name == key) {
        match = &p;
        break;
      }
    }
    if (!match) {
      throw Error("family \"" + info.name + "\" has no parameter \"" + key +
                  "\"");
    }
    if (!param_type_matches(match->type, value) &&
        !(match->allow_array && value.is_array())) {
      throw Error("family \"" + info.name + "\" parameter \"" + key +
                  "\" must be a " + param_type_name(match->type) + ", got " +
                  value.dump(0));
    }
    if (value.is_number() && value.as_double() < match->min_value) {
      throw Error("family \"" + info.name + "\" parameter \"" + key +
                  "\" must be >= " + json_number_to_string(match->min_value,
                                                           false) +
                  ", got " + value.dump(0));
    }
  }
  for (const ParamSpec& p : info.params) {
    if (out.params.contains(p.name)) continue;
    if (p.required) {
      throw Error("family \"" + info.name + "\" requires parameter \"" +
                  p.name + "\"");
    }
    if (!p.default_value.is_null()) out.params.set(p.name, p.default_value);
  }

  if (info.uses_topology) {
    if (!out.topology.is_object()) out.topology = info.default_topology;
    // Reconcile n with any size the topology itself pins down, so the
    // recorded scenario can never describe a different game than the one
    // built (players == graph vertices for every graph family).
    int64_t topo_n = 0;
    const std::string kind = out.topology.at("kind").as_string();
    if (kind == "grid" || kind == "torus") {
      const Json* rows = out.topology.find("rows");
      const Json* cols = out.topology.find("cols");
      if (rows && cols) topo_n = rows->as_int() * cols->as_int();
    } else if (const Json* tn = out.topology.find("n")) {
      topo_n = tn->as_int();
    }
    if (topo_n > 0) {
      if (out.n != 0 && out.n != int(topo_n)) {
        throw Error("scenario n = " + std::to_string(out.n) +
                    " disagrees with its topology's " +
                    std::to_string(topo_n) + " vertices");
      }
      out.n = int(topo_n);
    }
  } else if (out.topology.is_object()) {
    throw Error("family \"" + info.name + "\" does not take a topology");
  }
  if (out.n == 0) out.n = info.default_n;
  return out;
}

std::unique_ptr<Game> GameRegistry::make_game(const ScenarioSpec& spec) const {
  const ScenarioSpec full = validated(spec);
  return family(full.family).make(full);
}

std::unique_ptr<PotentialGame> GameRegistry::make_potential_game(
    const ScenarioSpec& spec) const {
  std::unique_ptr<Game> game = make_game(spec);
  if (dynamic_cast<PotentialGame*>(game.get()) == nullptr) {
    throw Error("scenario " + spec.summary() +
                " is not an exact potential game");
  }
  return std::unique_ptr<PotentialGame>(
      static_cast<PotentialGame*>(game.release()));
}

}  // namespace logitdyn::scenario
