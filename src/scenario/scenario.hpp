// Declarative scenario layer (DESIGN.md §10): a ScenarioSpec names a game
// family plus its parameters and (for graph-based families) a topology,
// and the GameRegistry turns it into a live Game. Every experiment in the
// harness consumes specs instead of hard-coding game constructors, so new
// workloads are JSON files, not new binaries.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "games/game.hpp"
#include "graph/graph.hpp"
#include "support/json.hpp"

namespace logitdyn::scenario {

/// A declarative game description: {family, n, params, topology}.
///
///   family   — registry key, one of the built-in families (see
///              GameRegistry::families()): congestion, ising,
///              graphical_coordination, table, plateau, dominance,
///              dominant, random_potential, coordination.
///   n        — player/vertex count; 0 means "family default".
///   params   — JSON object of family-specific parameters (validated,
///              defaulted, and typed by the registry).
///   topology — JSON object {"kind": "ring", ...} for families played on
///              a graph; null otherwise (the registry fills the family
///              default when omitted).
struct ScenarioSpec {
  std::string family;
  int n = 0;
  Json params = Json::object();
  Json topology;

  Json to_json() const;
  static ScenarioSpec from_json(const Json& j);

  /// One-line human summary, e.g. "plateau(n=32, g=8, l=2)".
  std::string summary() const;

  /// Content hash of THIS spec (16 lowercase hex chars, FNV-1a 64 over the
  /// canonical JSON serialization): independent of params/topology key
  /// order and of number formatting (2 vs 2.0), but NOT of defaults — two
  /// specs that differ only in an explicitly-spelled default value hash
  /// differently. Hash `GameRegistry::validated(spec)` (all defaults
  /// filled) when two ways of writing the same game must collide — that is
  /// the artifact-cache key (DESIGN.md §15).
  std::string canonical_hash() const;
};

/// Parameter descriptor for one family parameter (used by validation and
/// by `logitdyn_lab describe`).
struct ParamSpec {
  enum class Type { kBool, kInt, kNumber, kString, kArray };
  std::string name;
  Type type = Type::kNumber;
  bool required = false;
  Json default_value;  // null when required
  std::string description;
  /// Inclusive lower bound enforced on numeric params (validation error
  /// below it); the default accepts everything.
  double min_value = -1e308;
  /// True for scalar params that also accept a JSON array (e.g. the
  /// congestion per-link slope/offset, the table per-player strategy
  /// counts); the factory validates element shapes.
  bool allow_array = false;
};

/// Everything the registry knows about one game family.
struct FamilyInfo {
  std::string name;
  std::string description;
  std::vector<ParamSpec> params;
  bool uses_topology = false;
  /// Topology object used when the spec omits one (null if !uses_topology).
  Json default_topology;
  int default_n = 0;
  /// Factory: receives the spec with params already validated & defaulted.
  std::function<std::unique_ptr<Game>(const ScenarioSpec&)> make;
};

/// String-keyed factory over the game families. instance() freezes the
/// registry after the built-ins are registered (construction-time freeze,
/// DESIGN.md §15): every lookup and run entry point (contains/family/
/// families/validated/make_game) is const over immutable storage and safe
/// to call from any number of threads concurrently — the service daemon
/// is the first concurrent caller. register_family on a frozen registry
/// throws; start-up extension must happen before the first instance()
/// lookup (i.e. inside registration hooks). Storage is a deque so the
/// references family() hands out are never invalidated by registration.
class GameRegistry {
 public:
  static GameRegistry& instance();

  void register_family(FamilyInfo info);  ///< throws Error once frozen
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  bool contains(const std::string& family) const;
  const FamilyInfo& family(const std::string& name) const;  ///< throws Error
  std::vector<std::string> families() const;  ///< registration order

  /// Validate `spec` against the family's ParamSpecs (unknown keys,
  /// missing required params, and type mismatches all throw Error) and
  /// return a copy with defaults filled in (params, topology, n).
  ScenarioSpec validated(const ScenarioSpec& spec) const;

  /// validated() + factory call.
  std::unique_ptr<Game> make_game(const ScenarioSpec& spec) const;

  /// make_game() + downcast; throws Error if the family is not an exact
  /// potential game (e.g. a general random table game).
  std::unique_ptr<PotentialGame> make_potential_game(
      const ScenarioSpec& spec) const;

 private:
  GameRegistry() = default;
  std::deque<FamilyInfo> families_;
  bool frozen_ = false;
};

/// Build a graph from a topology object {"kind": ..., ...}. Kinds map to
/// graph/builders: path, ring, clique, star, grid (rows/cols), torus
/// (rows/cols), binary_tree, erdos_renyi (p, seed), random_regular
/// (d, seed). `n` is used when the object carries no "n" of its own.
Graph build_topology(const Json& topology, uint32_t n);

/// Human summary of a topology object, e.g. "ring(8)" or "grid(3x4)".
std::string topology_summary(const Json& topology, int n);

}  // namespace logitdyn::scenario
