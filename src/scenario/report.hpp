// Experiment Report (DESIGN.md §10): one object that captures everything a
// registered experiment produces — the aligned stdout tables the bench
// binaries have always printed, AND a structured JSON document (sections,
// tables with raw cells, rate fits, named values, seeds, git SHA,
// timestamp) through the shared support/json writer. The stdout rendering
// is byte-identical to the pre-registry binaries; the JSON is what the
// perf/paper tooling diffs across PRs.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/fit.hpp"
#include "support/json.hpp"
#include "support/run_control.hpp"
#include "support/table.hpp"

namespace logitdyn::scenario {

class ArtifactCacheBase;  // scenario/artifacts.hpp
class Report;

/// A table inside a Report: same fluent cell API as support/table's Table
/// (identical stdout formatting), plus raw-value capture for the JSON
/// document. Obtained from Report::table(); print() renders to the
/// report's echo stream.
class ReportTable {
 public:
  ReportTable& row();
  ReportTable& cell(const std::string& value);
  ReportTable& cell(const char* value);
  ReportTable& cell(double value, int precision = 4);
  ReportTable& cell(int64_t value);
  ReportTable& cell(int value) { return cell(int64_t(value)); }
  ReportTable& cell(size_t value);
  ReportTable& cell_sci(double value, int precision = 3);

  size_t num_rows() const { return rows_.size(); }

  /// Render the aligned table to the report's echo stream (no-op when the
  /// report is silenced). May be called once per table, after filling.
  void print();

  Json to_json() const;

 private:
  friend class Report;
  ReportTable(Report* report, std::vector<std::string> headers);

  Report* report_;
  Table table_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Json>> rows_;
};

/// Run options shared by every registered experiment (see registry.hpp for
/// the experiment side). Declared here so Report can serialize them.
struct RunOptions {
  /// Master seed override. Experiments fall back to their historical
  /// hard-coded seeds via seed_or(), so default runs stay bit-identical
  /// to the pre-registry binaries; every effective seed is recorded in
  /// the report.
  std::optional<uint64_t> seed;
  /// Beta grid override for the experiment's primary sweep (empty = the
  /// experiment's published grid).
  std::vector<double> beta_grid;
  /// Tiny-scenario mode: experiments shrink sizes/grids so a full sweep of
  /// the registry finishes in seconds (CI smoke, tests).
  bool smoke = false;
  /// Thread count for scenario sweeps (0 = ThreadPool::global()).
  int threads = 0;
  /// Wall-clock budget in seconds (0 = none). ExperimentRegistry::run
  /// arms a RunControl with it; an expired run still emits a schema-valid
  /// report, with status.state == "deadline" and partial measurements
  /// (DESIGN.md §14).
  double deadline_s = 0.0;
  /// Fleet checkpoint/resume (experiments with a sampling-scale fleet
  /// phase, i.e. local_mix): snapshot file + cadence in steps/rounds, and
  /// a snapshot file to resume from. Empty/0 = off.
  std::string checkpoint_path;
  uint64_t checkpoint_every = 0;
  std::string resume_path;
  /// Called after each fleet checkpoint is durably on disk, with the
  /// checkpoint path (nullable; not serialized). The service journal
  /// hooks this to record a `checkpointed` transition so a restarted
  /// daemon resumes instead of rerunning (DESIGN.md §16).
  std::function<void(const std::string&)> on_checkpoint;
  /// The cancellation handle experiments thread through their long loops
  /// (nullable). Installed by ExperimentRegistry::run (created there when
  /// deadline_s > 0); external harnesses may pre-install their own and
  /// cancel() it from another thread.
  RunControl* control = nullptr;
  /// Shared artifact cache (nullable; DESIGN.md §15). Installed by the
  /// service daemon so repeated/overlapping requests reuse expensive
  /// build products; CLI runs leave it null and experiments build inline.
  ArtifactCacheBase* artifacts = nullptr;

  uint64_t seed_or(uint64_t fallback) const {
    return seed ? *seed : fallback;
  }
  std::vector<double> betas_or(std::vector<double> fallback) const {
    return beta_grid.empty() ? std::move(fallback) : beta_grid;
  }

  Json to_json() const;
};

class Report {
 public:
  explicit Report(std::string name);
  // ReportTables hold a back-pointer to their Report, so the object is
  // pinned: callers construct it in place and pass it by reference.
  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  /// Where header/section/table/note render; &std::cout by default,
  /// nullptr silences stdout entirely (parallel sweeps, tests).
  void set_echo(std::ostream* os) { echo_ = os; }
  std::ostream* echo() const { return echo_; }

  // ----------------------------------------------- experiment-facing API
  /// The banner the bench binaries print: experiment line + claim line.
  void header(const std::string& title, const std::string& claim);
  /// Start a new section ("--- title ---"; pass print_banner = false for
  /// experiments that draw their own section headings). Content recorded
  /// before the first section() lands in an implicit untitled section.
  void section(const std::string& title, bool print_banner = true);
  ReportTable& table(std::vector<std::string> headers);
  /// One line of prose, echoed verbatim + '\n' and recorded.
  void note(const std::string& text);
  /// Record a least-squares rate fit with the paper-predicted rate it is
  /// compared against (JSON only; experiments print their own prose).
  void record_fit(const std::string& name, const LineFit& fit,
                  double predicted_rate);
  /// Record a named scalar/structured value in the current section.
  void record_value(const std::string& name, Json value);
  /// Record an effective RNG seed (JSON config.seeds).
  void record_seed(const std::string& name, uint64_t seed);

  /// Merge a run status into the report's status block (DESIGN.md §14):
  /// the worst (highest-severity) state seen wins; a non-empty `detail`
  /// appends one line regardless. Before the first call no status block
  /// is emitted, so pre-§14 documents are byte-identical.
  void set_run_status(RunStatus status, const std::string& detail = "");
  /// Attach a RunControl's work/certified counters to the status block.
  void set_status_counters(Json work, Json certified);
  /// Record that this run resumed from a durable checkpoint (emitted as
  /// status.resumed_from; forces the status block like set_run_status).
  void set_resumed_from(const std::string& path);
  RunStatus run_status() const { return status_; }

  // --------------------------------------------------------- meta + JSON
  void set_scenario(Json scenario_json) { scenario_ = std::move(scenario_json); }
  void set_options(Json options_json) { options_ = std::move(options_json); }
  /// Record title/claim without echoing a banner (registry metadata for
  /// experiments that draw their own headings); header() overrides.
  void set_title_claim(const std::string& title, const std::string& claim) {
    title_ = title;
    claim_ = claim;
  }

  const std::string& name() const { return name_; }
  const std::string& title() const { return title_; }

  /// The full schema-versioned document (validate_report_json accepts it).
  Json to_json() const;

 private:
  friend class ReportTable;
  struct Section {
    std::string title;
    std::vector<std::unique_ptr<ReportTable>> tables;
    std::vector<std::string> notes;
    Json fits = Json::array();
    Json values = Json::object();
  };
  Section& current();

  std::string name_;
  std::string title_, claim_;
  std::ostream* echo_;
  Json scenario_;
  Json options_;
  Json seeds_ = Json::object();
  std::vector<Section> sections_;
  RunStatus status_ = RunStatus::kCompleted;
  bool status_set_ = false;
  std::vector<std::string> status_detail_;
  std::string status_resumed_from_;
  Json status_work_;
  Json status_certified_;
};

/// environment block shared by every emitted document: git SHA (the
/// LOGITDYN_GIT_SHA env var wins over the compiled-in value), UTC
/// timestamp, hardware thread count.
Json environment_json();

/// Skeleton shared by experiment reports and the BENCH_* emitters:
/// {schema_version, kind, name, config, environment, measurements}.
Json make_document(const std::string& kind, const std::string& name,
                   Json config, Json measurements);

/// Validate a document emitted by make_document/Report::to_json (kinds:
/// "experiment", "bench", "experiment_sweep"). Returns true when valid;
/// otherwise false with a description in *error.
bool validate_report_json(const Json& doc, std::string* error);

}  // namespace logitdyn::scenario
