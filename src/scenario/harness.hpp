// Shared measurement helpers for registered experiments — the one home of
// the exact-mixing-time conveniences that used to live (three overloads
// deep) in bench/bench_common.hpp. bench_common now forwards here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/mixing.hpp"
#include "core/chain.hpp"
#include "core/lumped.hpp"
#include "support/fit.hpp"

namespace logitdyn::harness {

/// Exact worst-case t_mix(1/4) of a dense chain; `converged == false` on
/// budget blowout (callers print "> budget" via tmix_cell).
MixingResult exact_tmix(const DenseMatrix& p, const std::vector<double>& pi,
                        uint64_t max_time = uint64_t(1) << 36);

/// Exact worst-case t_mix of a LogitChain (builds the dense matrix).
MixingResult exact_tmix(const LogitChain& chain,
                        uint64_t max_time = uint64_t(1) << 36);

/// Exact worst-case t_mix of a lumped birth-death chain.
MixingResult exact_tmix(const BirthDeathChain& bd,
                        uint64_t max_time = uint64_t(1) << 44);

/// Fit log(t_mix) = a + rate * beta and report (rate, r^2).
LineFit rate_fit(const std::vector<double>& betas,
                 const std::vector<double>& times);

/// Table cell for a MixingResult: the time, or "> budget".
std::string tmix_cell(const MixingResult& r);

}  // namespace logitdyn::harness
