// Artifact-cache seam between experiments and the service daemon
// (DESIGN.md §15). The scenario layer cannot depend on src/service/, so
// experiments see only this abstract get-or-build interface; RunOptions
// carries a nullable pointer to it. CLI runs leave it null (zero cost);
// the daemon installs service::ArtifactCache so overlapping requests
// share expensive build products (stationary vectors, transition
// matrices, spectra, certified mixing envelopes) keyed by the validated
// spec's canonical hash.
//
// Publication policy: an artifact built during a degraded or interrupted
// run must never be served to a later request — the builder reports
// `publish = false` and the value is returned to its own run but not
// retained. Keys must therefore name EVERYTHING the value depends on
// (spec hash, beta, kind, budgets); the typed helper below additionally
// guards against kind collisions with a type check.
#pragma once

#include <functional>
#include <memory>
#include <string>

namespace logitdyn::scenario {

class ArtifactCacheBase {
 public:
  /// A freshly built artifact: the (type-erased) value, its approximate
  /// retained size for the cache's byte accounting, and whether the value
  /// is publishable (certified, built by an uninterrupted run).
  struct Built {
    std::shared_ptr<void> value;
    size_t bytes = 0;
    bool publish = true;
  };
  using BuildFn = std::function<Built()>;

  virtual ~ArtifactCacheBase() = default;

  /// Return the cached value for `key`, or invoke `build` and (when the
  /// result says publish) retain it. Implementations must coalesce
  /// concurrent builds of the same key: the second caller blocks on the
  /// first build instead of recomputing.
  virtual std::shared_ptr<void> get_or_build(const std::string& key,
                                             const BuildFn& build) = 0;
};

/// Typed convenience over get_or_build: `build` returns a shared_ptr<T>
/// and `bytes(value)`/`publish()` are evaluated after the build. A null
/// cache just builds — experiments call this unconditionally.
template <typename T, typename BuildFn, typename BytesFn, typename PublishFn>
std::shared_ptr<const T> cached_artifact(ArtifactCacheBase* cache,
                                         const std::string& key,
                                         BuildFn&& build, BytesFn&& bytes,
                                         PublishFn&& publish) {
  if (cache == nullptr) {
    return std::shared_ptr<const T>(build());
  }
  std::shared_ptr<void> value =
      cache->get_or_build(key, [&]() -> ArtifactCacheBase::Built {
        std::shared_ptr<T> built = build();
        return {built, bytes(*built), publish()};
      });
  return std::static_pointer_cast<const T>(std::move(value));
}

}  // namespace logitdyn::scenario
