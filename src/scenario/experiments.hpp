// Registration hooks for the built-in experiments (one translation unit
// per experiment under src/scenario/experiments/). Explicit registration —
// not static initializers — so the static library never silently drops an
// experiment the linker thinks is unreferenced.
#pragma once

#include "scenario/registry.hpp"

namespace logitdyn::scenario {

void register_t31_eigenvalues(ExperimentRegistry& reg);
void register_t34_potential_upper(ExperimentRegistry& reg);
void register_t35_lower_family(ExperimentRegistry& reg);
void register_t36_small_beta(ExperimentRegistry& reg);
void register_t38_zeta(ExperimentRegistry& reg);
void register_t42_dominant(ExperimentRegistry& reg);
void register_t51_cutwidth(ExperimentRegistry& reg);
void register_t55_clique(ExperimentRegistry& reg);
void register_t56_ring(ExperimentRegistry& reg);
void register_ablation_methods(ExperimentRegistry& reg);
void register_hitting_vs_mixing(ExperimentRegistry& reg);
void register_ising_equivalence(ExperimentRegistry& reg);
void register_parallel_dynamics(ExperimentRegistry& reg);
void register_local_mix(ExperimentRegistry& reg);
void register_explore(ExperimentRegistry& reg);
void register_worst_start(ExperimentRegistry& reg);

}  // namespace logitdyn::scenario
