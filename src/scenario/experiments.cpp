#include "scenario/experiments.hpp"

namespace logitdyn::scenario {

void register_builtin_experiments(ExperimentRegistry& registry) {
  register_t31_eigenvalues(registry);
  register_t34_potential_upper(registry);
  register_t35_lower_family(registry);
  register_t36_small_beta(registry);
  register_t38_zeta(registry);
  register_t42_dominant(registry);
  register_t51_cutwidth(registry);
  register_t55_clique(registry);
  register_t56_ring(registry);
  register_ablation_methods(registry);
  register_hitting_vs_mixing(registry);
  register_ising_equivalence(registry);
  register_parallel_dynamics(registry);
  register_local_mix(registry);
  register_explore(registry);
  register_worst_start(registry);
}

}  // namespace logitdyn::scenario
