#include "scenario/harness.hpp"

namespace logitdyn::harness {

MixingResult exact_tmix(const DenseMatrix& p, const std::vector<double>& pi,
                        uint64_t max_time) {
  return mixing_time_doubling(p, pi, 0.25, max_time);
}

MixingResult exact_tmix(const LogitChain& chain, uint64_t max_time) {
  return exact_tmix(chain.dense_transition(), chain.stationary(), max_time);
}

MixingResult exact_tmix(const BirthDeathChain& bd, uint64_t max_time) {
  return mixing_time_doubling(bd.transition(), bd.stationary(), 0.25,
                              max_time);
}

LineFit rate_fit(const std::vector<double>& betas,
                 const std::vector<double>& times) {
  return fit_exponential_rate(betas, times);
}

std::string tmix_cell(const MixingResult& r) {
  if (!r.converged) return "> budget";
  return std::to_string(r.time);
}

}  // namespace logitdyn::harness
