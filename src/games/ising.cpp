#include "games/ising.hpp"

#include "support/error.hpp"

namespace logitdyn {

IsingGame::IsingGame(Graph graph, double coupling, double field)
    : graph_(std::move(graph)),
      space_(int(graph_.num_vertices()), 2),
      coupling_(coupling),
      field_(field) {
  LD_CHECK(graph_.num_vertices() >= 1, "IsingGame: empty graph");
  LD_CHECK(coupling_ > 0, "IsingGame: ferromagnetic coupling J > 0 required");
}

double IsingGame::potential(const Profile& x) const {
  double energy = 0.0;
  for (const Edge& e : graph_.edges()) {
    const int su = 2 * x[e.u] - 1;
    const int sv = 2 * x[e.v] - 1;
    energy -= coupling_ * double(su * sv);
  }
  if (field_ != 0.0) {
    for (Strategy s : x) energy -= field_ * double(2 * s - 1);
  }
  return energy;
}

void IsingGame::fill_spin_row(size_t v, double energy, const Profile& x,
                              std::span<double> out) const {
  // Local field at `v`: the energy depends on sigma_v only through
  // -sigma_v * (J * sum of neighbour spins + h).
  double field = field_;
  for (uint32_t w : graph_.neighbors(uint32_t(v))) {
    field += coupling_ * double(2 * x[w] - 1);
  }
  const double sigma_cur = double(2 * x[v] - 1);
  const double energy_rest = energy + sigma_cur * field;
  out[0] = energy_rest + field;  // spin -1
  out[1] = energy_rest - field;  // spin +1
}

void IsingGame::potential_row(int player, Profile& x,
                              std::span<double> out) const {
  LD_CHECK(out.size() == 2, "IsingGame::potential_row: spin games have 2 "
                            "strategies");
  fill_spin_row(size_t(player), potential(x), x, out);
}

void IsingGame::potential_rows(Profile& x, std::span<double> flat) const {
  LD_CHECK(flat.size() == space_.total_strategies(),
           "IsingGame::potential_rows: output size mismatch");
  const double energy = potential(x);
  for (size_t v = 0; v < x.size(); ++v) {
    fill_spin_row(v, energy, x, flat.subspan(2 * v, 2));
  }
}

double IsingGame::magnetization(const Profile& x) const {
  double m = 0.0;
  for (Strategy s : x) m += double(2 * s - 1);
  return m;
}

GraphicalCoordinationGame IsingGame::equivalent_coordination_game() const {
  LD_CHECK(field_ == 0.0,
           "equivalent_coordination_game: nonzero field adds a vertex term "
           "that the edge-only coordination potential cannot express");
  return GraphicalCoordinationGame(
      graph_, CoordinationPayoffs::from_deltas(2.0 * coupling_,
                                               2.0 * coupling_));
}

std::string IsingGame::name() const {
  return "ising(n=" + std::to_string(graph_.num_vertices()) + ")";
}

}  // namespace logitdyn
