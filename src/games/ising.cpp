#include "games/ising.hpp"

#include "support/error.hpp"

namespace logitdyn {

IsingGame::IsingGame(Graph graph, double coupling, double field)
    : graph_(std::move(graph)),
      space_(int(graph_.num_vertices()), 2),
      coupling_(coupling),
      field_(field) {
  LD_CHECK(graph_.num_vertices() >= 1, "IsingGame: empty graph");
  LD_CHECK(coupling_ > 0, "IsingGame: ferromagnetic coupling J > 0 required");
}

double IsingGame::potential(const Profile& x) const {
  double energy = 0.0;
  for (const Edge& e : graph_.edges()) {
    const int su = 2 * x[e.u] - 1;
    const int sv = 2 * x[e.v] - 1;
    energy -= coupling_ * double(su * sv);
  }
  if (field_ != 0.0) {
    for (Strategy s : x) energy -= field_ * double(2 * s - 1);
  }
  return energy;
}

double IsingGame::magnetization(const Profile& x) const {
  double m = 0.0;
  for (Strategy s : x) m += double(2 * s - 1);
  return m;
}

GraphicalCoordinationGame IsingGame::equivalent_coordination_game() const {
  LD_CHECK(field_ == 0.0,
           "equivalent_coordination_game: nonzero field adds a vertex term "
           "that the edge-only coordination potential cannot express");
  return GraphicalCoordinationGame(
      graph_, CoordinationPayoffs::from_deltas(2.0 * coupling_,
                                               2.0 * coupling_));
}

std::string IsingGame::name() const {
  return "ising(n=" + std::to_string(graph_.num_vertices()) + ")";
}

}  // namespace logitdyn
