#include "games/dominance.hpp"

#include <algorithm>
#include <functional>

#include "support/error.hpp"

namespace logitdyn {

namespace {

/// Enumerate profiles whose every coordinate is currently surviving,
/// with player `skip`'s coordinate overwritten by the caller.
class SurvivorEnumerator {
 public:
  SurvivorEnumerator(const ProfileSpace& space,
                     const std::vector<std::vector<Strategy>>& surviving,
                     int skip)
      : space_(space), surviving_(surviving), skip_(skip) {}

  /// Apply fn to every survivor profile (with x[skip] unspecified);
  /// fn returns false to abort the scan early. Returns false if aborted.
  bool for_each(Profile& x, const std::function<bool(Profile&)>& fn) const {
    return recurse(x, 0, fn);
  }

 private:
  bool recurse(Profile& x, int player,
               const std::function<bool(Profile&)>& fn) const {
    if (player == space_.num_players()) return fn(x);
    if (player == skip_) return recurse(x, player + 1, fn);
    for (Strategy s : surviving_[size_t(player)]) {
      x[size_t(player)] = s;
      if (!recurse(x, player + 1, fn)) return false;
    }
    return true;
  }

  const ProfileSpace& space_;
  const std::vector<std::vector<Strategy>>& surviving_;
  int skip_;
};

/// Does strategy `t` dominate `s` for `player` against the survivors?
bool dominates(const Game& game,
               const std::vector<std::vector<Strategy>>& surviving,
               int player, Strategy t, Strategy s, DominanceMode mode) {
  bool strictly_better_somewhere = false;
  bool never_worse = true;
  bool strictly_better_everywhere = true;
  Profile x(size_t(game.num_players()), 0);
  std::vector<double> row(size_t(game.num_strategies(player)));
  SurvivorEnumerator enumerate(game.space(), surviving, player);
  enumerate.for_each(x, [&](Profile& profile) {
    game.utility_row(player, profile, row);
    const double u_t = row[size_t(t)];
    const double u_s = row[size_t(s)];
    if (u_t > u_s) {
      strictly_better_somewhere = true;
    } else {
      strictly_better_everywhere = false;
      if (u_t < u_s) {
        never_worse = false;
        return false;  // cannot dominate in either mode
      }
    }
    return true;
  });
  if (mode == DominanceMode::kStrict) return strictly_better_everywhere;
  return never_worse && strictly_better_somewhere;
}

}  // namespace

DominanceResult iterated_dominance(const Game& game, DominanceMode mode) {
  const ProfileSpace& sp = game.space();
  DominanceResult result;
  result.surviving.resize(size_t(sp.num_players()));
  for (int i = 0; i < sp.num_players(); ++i) {
    for (Strategy s = 0; s < sp.num_strategies(i); ++s) {
      result.surviving[size_t(i)].push_back(s);
    }
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (int i = 0; i < sp.num_players() && !progress; ++i) {
      auto& mine = result.surviving[size_t(i)];
      if (mine.size() <= 1) continue;
      for (size_t si = 0; si < mine.size() && !progress; ++si) {
        for (size_t ti = 0; ti < mine.size() && !progress; ++ti) {
          if (si == ti) continue;
          if (dominates(game, result.surviving, i, mine[ti], mine[si],
                        mode)) {
            result.eliminated.emplace_back(i, mine[si]);
            mine.erase(mine.begin() + long(si));
            progress = true;
          }
        }
      }
    }
  }
  return result;
}

bool is_dominance_solvable(const Game& game, DominanceMode mode) {
  return iterated_dominance(game, mode).solvable();
}

}  // namespace logitdyn
