// Strategy profiles and the mixed-radix profile space.
//
// A profile x = (x_1, ..., x_n) is encoded as a single index so the whole
// state space S = S_1 x ... x S_n of the logit Markov chain can be walked,
// vectorized over, and used to address matrices directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace logitdyn {

using Strategy = int32_t;
/// A strategy profile: entry i is player i's strategy in [0, |S_i|).
using Profile = std::vector<Strategy>;

/// Mixed-radix codec for S_1 x ... x S_n. Player 0 is the least-significant
/// digit. Immutable after construction.
class ProfileSpace {
 public:
  /// `sizes[i]` = |S_i| >= 1. The product must fit in a size_t with room
  /// to spare (checked).
  explicit ProfileSpace(std::vector<int32_t> sizes);

  /// Convenience: n players with m strategies each.
  ProfileSpace(int num_players, int32_t num_strategies);

  int num_players() const { return int(sizes_.size()); }
  int32_t num_strategies(int player) const { return sizes_[size_t(player)]; }
  int32_t max_strategies() const { return max_size_; }

  /// |S| = prod |S_i|.
  size_t num_profiles() const { return num_profiles_; }

  /// sum_i |S_i|: the length of a concatenated all-players utility row
  /// buffer (see Game::utility_rows).
  size_t total_strategies() const { return total_strategies_; }

  /// Offset of `player`'s row inside a concatenated all-players buffer:
  /// sum of |S_j| over j < player. strategy_offset(num_players()) equals
  /// total_strategies(), so consumers can slice rows without re-deriving
  /// the prefix sum.
  size_t strategy_offset(int player) const {
    return strategy_offsets_[size_t(player)];
  }

  /// Mixed-radix stride of `player`: encoded profiles that differ only in
  /// player's strategy are `stride(player)` apart. The table-backed games
  /// use this to gather a whole utility row without re-encoding.
  size_t stride(int player) const { return strides_[size_t(player)]; }

  size_t index(const Profile& x) const;
  Profile decode(size_t idx) const;
  void decode_into(size_t idx, Profile& out) const;

  /// Strategy of `player` inside encoded profile `idx`.
  Strategy strategy_of(size_t idx, int player) const;

  /// Index of the profile equal to `idx` except player `player` plays `s`.
  size_t with_strategy(size_t idx, int player, Strategy s) const;

  /// Hamming distance between two encoded profiles.
  int hamming_distance(size_t a, size_t b) const;

  /// Number of players playing strategy `s` in encoded profile `idx`
  /// (the weight function w(x) of Theorems 3.5/5.x when s = 1).
  int count_playing(size_t idx, Strategy s) const;

 private:
  std::vector<int32_t> sizes_;
  std::vector<size_t> strides_;
  std::vector<size_t> strategy_offsets_;  // size n+1, prefix sums of sizes_
  size_t num_profiles_ = 1;
  size_t total_strategies_ = 0;
  int32_t max_size_ = 1;
};

}  // namespace logitdyn
