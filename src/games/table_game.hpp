// Explicit-table games and exact-potential analysis.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "games/game.hpp"

namespace logitdyn {

/// A game whose utilities are stored as one table per player, indexed by
/// the encoded profile. The most general representation; used for custom
/// games and as the target of random-game generators.
class TableGame : public Game {
 public:
  /// `utilities[i][space.index(x)]` = u_i(x).
  TableGame(ProfileSpace space, std::vector<std::vector<double>> utilities,
            std::string name = "table-game");

  /// Build by evaluating `u(player, profile)` on every (player, profile).
  static TableGame from_function(
      ProfileSpace space,
      const std::function<double(int, const Profile&)>& u,
      std::string name = "table-game");

  const ProfileSpace& space() const override { return space_; }
  double utility(int player, const Profile& x) const override;

  /// Incremental oracle: encode the profile once, then gather the whole
  /// row with a strided walk of the player's table — O(n + m) instead of
  /// m separate O(n) re-encodes.
  void utility_row(int player, Profile& x,
                   std::span<double> out) const override;

  /// Batched oracle: the profile is encoded once and every player's row
  /// gathered by stride — O(n + sum_i m_i) instead of O(n * (n + m)).
  void utility_rows(Profile& x, std::span<double> flat) const override;

  std::string name() const override { return name_; }

  double utility_by_index(int player, size_t idx) const {
    return utilities_[size_t(player)][idx];
  }

 private:
  ProfileSpace space_;
  std::vector<std::vector<double>> utilities_;
  std::string name_;
};

/// A potential game given by an explicit potential table (identical-
/// interest utilities u_i = -Phi).
class TablePotentialGame : public PotentialGame {
 public:
  TablePotentialGame(ProfileSpace space, std::vector<double> phi,
                     std::string name = "table-potential-game");

  const ProfileSpace& space() const override { return space_; }
  double potential(const Profile& x) const override;

  /// Strided gather of the potential table, mirroring
  /// TableGame::utility_row.
  void potential_row(int player, Profile& x,
                     std::span<double> out) const override;

  /// Batched strided gather: one encode for all players' rows.
  void potential_rows(Profile& x, std::span<double> flat) const override;

  std::string name() const override { return name_; }

  double potential_by_index(size_t idx) const { return phi_[idx]; }
  std::span<const double> potential_table() const { return phi_; }

 private:
  ProfileSpace space_;
  std::vector<double> phi_;
  std::string name_;
};

/// If `game` is an exact potential game, return the potential table
/// (normalized so Phi(profile 0) = 0); otherwise std::nullopt.
///
/// Construction: integrate utility differences along lexicographic paths
/// from the all-zero profile, then verify the paper's Eq. (1) on every
/// Hamming edge (the four-cycle condition).
std::optional<std::vector<double>> extract_potential(const Game& game,
                                                     double tol = 1e-9);

}  // namespace logitdyn
