#include "games/random_potential.hpp"

namespace logitdyn {

TablePotentialGame make_random_potential_game(ProfileSpace space,
                                              double range, Rng& rng) {
  std::vector<double> phi(space.num_profiles());
  for (double& v : phi) v = rng.uniform() * range;
  return TablePotentialGame(std::move(space), std::move(phi),
                            "random-potential");
}

TableGame make_random_game(ProfileSpace space, double range, Rng& rng) {
  const int n = space.num_players();
  std::vector<std::vector<double>> tables(
      size_t(n), std::vector<double>(space.num_profiles()));
  for (auto& table : tables) {
    for (double& v : table) v = rng.uniform() * range;
  }
  return TableGame(std::move(space), std::move(tables), "random-game");
}

}  // namespace logitdyn
