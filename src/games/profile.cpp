#include "games/profile.hpp"

#include <limits>

#include "support/error.hpp"

namespace logitdyn {

ProfileSpace::ProfileSpace(std::vector<int32_t> sizes)
    : sizes_(std::move(sizes)) {
  LD_CHECK(!sizes_.empty(), "ProfileSpace: need at least one player");
  strides_.resize(sizes_.size());
  strategy_offsets_.resize(sizes_.size() + 1);
  constexpr size_t kCap = size_t(1) << 62;
  for (size_t i = 0; i < sizes_.size(); ++i) {
    LD_CHECK(sizes_[i] >= 1, "ProfileSpace: player ", i,
             " needs at least one strategy");
    strides_[i] = num_profiles_;
    strategy_offsets_[i] = total_strategies_;
    LD_CHECK(num_profiles_ <= kCap / size_t(sizes_[i]),
             "ProfileSpace: profile count overflow");
    num_profiles_ *= size_t(sizes_[i]);
    total_strategies_ += size_t(sizes_[i]);
    max_size_ = std::max(max_size_, sizes_[i]);
  }
  strategy_offsets_[sizes_.size()] = total_strategies_;
}

ProfileSpace::ProfileSpace(int num_players, int32_t num_strategies)
    : ProfileSpace(std::vector<int32_t>(size_t(num_players), num_strategies)) {
  LD_CHECK(num_players >= 1, "ProfileSpace: need at least one player");
}

size_t ProfileSpace::index(const Profile& x) const {
  LD_CHECK(x.size() == sizes_.size(), "ProfileSpace::index: size mismatch");
  size_t idx = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    LD_CHECK(x[i] >= 0 && x[i] < sizes_[i],
             "ProfileSpace::index: strategy out of range for player ", i);
    idx += size_t(x[i]) * strides_[i];
  }
  return idx;
}

Profile ProfileSpace::decode(size_t idx) const {
  Profile x(sizes_.size());
  decode_into(idx, x);
  return x;
}

void ProfileSpace::decode_into(size_t idx, Profile& out) const {
  LD_CHECK(idx < num_profiles_, "ProfileSpace::decode: index out of range");
  out.resize(sizes_.size());
  for (size_t i = 0; i < sizes_.size(); ++i) {
    out[i] = Strategy(idx % size_t(sizes_[i]));
    idx /= size_t(sizes_[i]);
  }
}

Strategy ProfileSpace::strategy_of(size_t idx, int player) const {
  LD_CHECK(player >= 0 && player < num_players(),
           "ProfileSpace::strategy_of: bad player");
  return Strategy((idx / strides_[size_t(player)]) %
                  size_t(sizes_[size_t(player)]));
}

size_t ProfileSpace::with_strategy(size_t idx, int player, Strategy s) const {
  LD_CHECK(player >= 0 && player < num_players(),
           "ProfileSpace::with_strategy: bad player");
  LD_CHECK(s >= 0 && s < sizes_[size_t(player)],
           "ProfileSpace::with_strategy: strategy out of range");
  const Strategy old = strategy_of(idx, player);
  return idx + (size_t(s) - size_t(old)) * strides_[size_t(player)];
}

int ProfileSpace::hamming_distance(size_t a, size_t b) const {
  int d = 0;
  for (int i = 0; i < num_players(); ++i) {
    if (strategy_of(a, i) != strategy_of(b, i)) ++d;
  }
  return d;
}

int ProfileSpace::count_playing(size_t idx, Strategy s) const {
  int count = 0;
  for (int i = 0; i < num_players(); ++i) {
    if (strategy_of(idx, i) == s) ++count;
  }
  return count;
}

}  // namespace logitdyn
