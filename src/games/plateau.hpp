// The lower-bound potential family of Theorem 3.5.
//
// Phi_n(x) = -l * min{ c, |c - w(x)| } on {0,1}^n, where w(x) is the number
// of 1s and c = g / l. The maximum global variation is DeltaPhi = g, the
// maximum local variation is deltaPhi = l, and the Gibbs measure splits its
// mass between the all-zeros well and the high-weight region across a
// potential barrier of height g — giving mixing time e^{beta*g*(1-o(1))}.
#pragma once

#include <string>

#include "games/game.hpp"

namespace logitdyn {

class PlateauGame : public PotentialGame {
 public:
  /// Requires l > 0, c = g/l a positive integer, and c <= n/2 (the paper's
  /// standing assumption 2g/n <= l <= g).
  PlateauGame(int num_players, double global_variation,
              double local_variation);

  const ProfileSpace& space() const override { return space_; }
  double potential(const Profile& x) const override;

  /// Incremental oracle: one O(n) weight count with the player excluded,
  /// then each candidate reads potential_of_weight in O(1).
  void potential_row(int player, Profile& x,
                     std::span<double> out) const override;

  /// Batched oracle: one O(n) weight count, O(1) per player.
  void potential_rows(Profile& x, std::span<double> flat) const override;

  std::string name() const override;

  /// Potential as a function of the Hamming weight k = w(x) — the game is
  /// weight-symmetric, which the lumped chain exploits.
  double potential_of_weight(int k) const;

  double global_variation() const { return g_; }
  double local_variation() const { return l_; }
  int barrier_weight() const { return c_; }  ///< c = g/l

 private:
  ProfileSpace space_;
  double g_, l_;
  int c_;
};

}  // namespace logitdyn
