// Congestion games with Rosenthal potential.
//
// Used as the non-trivial potential-game workload for the examples and for
// tests of the potential-extraction machinery (congestion games are the
// canonical exact potential games).
#pragma once

#include <string>
#include <vector>

#include "games/game.hpp"

namespace logitdyn {

/// A congestion game: resources r have load-dependent latencies
/// latency[r][k-1] for k users; each player picks one of her allowed
/// resource subsets, paying the sum of latencies over her subset.
///
/// Potential (Rosenthal '73): Phi(x) = sum_r sum_{k=1..load_r(x)}
/// latency[r][k-1]; equilibria are local minima, matching the library's
/// sign convention.
class CongestionGame : public PotentialGame {
 public:
  /// `strategies[i][s]` = list of resource ids used by player i's s-th
  /// strategy. `latency[r]` must have at least n entries (load 1..n).
  CongestionGame(int num_resources,
                 std::vector<std::vector<std::vector<int>>> strategies,
                 std::vector<std::vector<double>> latency);

  const ProfileSpace& space() const override { return space_; }
  double potential(const Profile& x) const override;
  double utility(int player, const Profile& x) const override;

  /// Incremental oracle: resource loads with `player` removed are computed
  /// once (O(n * |subset|)), then each candidate subset gathers its cost
  /// from those base loads in O(|subset|) — no per-candidate load rebuild.
  void utility_row(int player, Profile& x,
                   std::span<double> out) const override;

  /// Rosenthal deltas off the same base loads:
  /// Phi(s, x_{-i}) = Phi_base + sum_{r in S_s} latency[r][base_load[r]].
  void potential_row(int player, Profile& x,
                     std::span<double> out) const override;

  /// Batched oracle: the full load vector is built ONCE per profile; each
  /// player's base loads are obtained by decrementing (then restoring) her
  /// own subset — O(n*L + sum_i m_i*L) per profile instead of O(n^2*L).
  void utility_rows(Profile& x, std::span<double> flat) const override;

  std::string name() const override;

  /// Load profile: users per resource under x.
  std::vector<int> loads(const Profile& x) const;

  /// Sum over players of their (negative) costs: the social welfare.
  double social_welfare(const Profile& x) const;

 private:
  static ProfileSpace make_space(
      const std::vector<std::vector<std::vector<int>>>& strategies);

  /// Resource loads of all players except `player` under x, in a
  /// thread-local buffer valid until the next call on this thread.
  const std::vector<int>& opponent_loads(int player, const Profile& x) const;

  int num_resources_;
  std::vector<std::vector<std::vector<int>>> strategies_;
  std::vector<std::vector<double>> latency_;
  ProfileSpace space_;
};

/// Convenience builder: n identical players choosing one of m parallel
/// links with linear latency a[r] * load + b[r].
CongestionGame make_parallel_links_game(int num_players,
                                        std::vector<double> slope,
                                        std::vector<double> offset);

}  // namespace logitdyn
