// Graphical coordination games (paper Section 5): every vertex of a social
// graph plays the 2x2 basic coordination game with each neighbour; a
// player's payoff is the sum over incident edges; the potential is the sum
// of edge potentials.
#pragma once

#include <string>

#include "games/coordination.hpp"
#include "games/game.hpp"
#include "graph/graph.hpp"

namespace logitdyn {

class GraphicalCoordinationGame : public PotentialGame {
 public:
  GraphicalCoordinationGame(Graph graph, CoordinationPayoffs payoffs);

  const ProfileSpace& space() const override { return space_; }
  double potential(const Profile& x) const override;
  double utility(int player, const Profile& x) const override;

  /// Incremental oracle: one pass over the player's neighbourhood
  /// accumulates the payoff of both candidate strategies simultaneously
  /// (the payoff only sees incident edges), instead of one pass per
  /// candidate.
  void utility_row(int player, Profile& x,
                   std::span<double> out) const override;

  /// Phi(s, x_{-i}) = Phi(x) + potential_delta(i, x, s): one O(|E|) base
  /// evaluation plus an O(deg) delta pass for the whole row.
  void potential_row(int player, Profile& x,
                     std::span<double> out) const override;

  /// The utility is edge-local, so the batched row is just n local rows;
  /// this must bypass PotentialGame's negated-potential batch (the
  /// per-player payoff is not -Phi).
  void utility_rows(Profile& x, std::span<double> flat) const override;

  /// Batched potential oracle: Phi(x) evaluated once, O(deg) deltas per
  /// vertex — O(|E| + sum deg) per profile instead of O(n * |E|).
  void potential_rows(Profile& x, std::span<double> flat) const override;

  std::string name() const override;

  const Graph& graph() const { return graph_; }
  const CoordinationPayoffs& payoffs() const { return payoffs_; }
  double delta0() const { return payoffs_.delta0(); }
  double delta1() const { return payoffs_.delta1(); }

  /// Potential change if `player` switched to `s` (O(degree), used by the
  /// large-n simulator instead of two O(|E|) potential evaluations).
  double potential_delta(int player, const Profile& x, Strategy s) const;

  /// Potential of the monochromatic profile (s, s, ..., s).
  double monochromatic_potential(Strategy s) const;

 private:
  /// Fill the 2-entry potential row of vertex `v` given Phi(x) (shared by
  /// the single and batched row).
  void fill_potential_row(size_t v, double phi, const Profile& x,
                          std::span<double> out) const;

  Graph graph_;
  ProfileSpace space_;
  CoordinationPayoffs payoffs_;
};

}  // namespace logitdyn
