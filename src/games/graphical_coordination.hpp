// Graphical coordination games (paper Section 5): every vertex of a social
// graph plays the 2x2 basic coordination game with each neighbour; a
// player's payoff is the sum over incident edges; the potential is the sum
// of edge potentials.
#pragma once

#include <string>

#include "games/coordination.hpp"
#include "games/game.hpp"
#include "graph/graph.hpp"

namespace logitdyn {

class GraphicalCoordinationGame : public PotentialGame {
 public:
  GraphicalCoordinationGame(Graph graph, CoordinationPayoffs payoffs);

  const ProfileSpace& space() const override { return space_; }
  double potential(const Profile& x) const override;
  double utility(int player, const Profile& x) const override;
  std::string name() const override;

  const Graph& graph() const { return graph_; }
  const CoordinationPayoffs& payoffs() const { return payoffs_; }
  double delta0() const { return payoffs_.delta0(); }
  double delta1() const { return payoffs_.delta1(); }

  /// Potential change if `player` switched to `s` (O(degree), used by the
  /// large-n simulator instead of two O(|E|) potential evaluations).
  double potential_delta(int player, const Profile& x, Strategy s) const;

  /// Potential of the monochromatic profile (s, s, ..., s).
  double monochromatic_potential(Strategy s) const;

 private:
  Graph graph_;
  ProfileSpace space_;
  CoordinationPayoffs payoffs_;
};

}  // namespace logitdyn
