#include "games/graphical_coordination.hpp"

#include "support/error.hpp"

namespace logitdyn {

namespace {

double edge_payoff(const CoordinationPayoffs& p, Strategy mine,
                   Strategy theirs) {
  if (mine == 0) return theirs == 0 ? p.a : p.c;
  return theirs == 0 ? p.d : p.b;
}

}  // namespace

GraphicalCoordinationGame::GraphicalCoordinationGame(
    Graph graph, CoordinationPayoffs payoffs)
    : graph_(std::move(graph)),
      space_(int(graph_.num_vertices()), 2),
      payoffs_(payoffs) {
  LD_CHECK(graph_.num_vertices() >= 1,
           "GraphicalCoordinationGame: empty graph");
  LD_CHECK(payoffs_.delta0() > 0 && payoffs_.delta1() > 0,
           "GraphicalCoordinationGame: need delta0, delta1 > 0");
}

double GraphicalCoordinationGame::potential(const Profile& x) const {
  double phi = 0.0;
  for (const Edge& e : graph_.edges()) {
    phi += CoordinationGame::edge_potential(payoffs_, x[e.u], x[e.v]);
  }
  return phi;
}

double GraphicalCoordinationGame::utility(int player, const Profile& x) const {
  const Strategy mine = x[size_t(player)];
  double u = 0.0;
  for (uint32_t w : graph_.neighbors(uint32_t(player))) {
    u += edge_payoff(payoffs_, mine, x[w]);
  }
  return u;
}

void GraphicalCoordinationGame::utility_row(int player, Profile& x,
                                            std::span<double> out) const {
  LD_CHECK(out.size() == 2,
           "GraphicalCoordinationGame::utility_row: 2 strategies expected");
  // Both candidates accumulate edge payoffs in the same neighbour order as
  // `utility`, so each entry is bit-identical to a direct evaluation.
  double u0 = 0.0, u1 = 0.0;
  for (uint32_t w : graph_.neighbors(uint32_t(player))) {
    u0 += edge_payoff(payoffs_, 0, x[w]);
    u1 += edge_payoff(payoffs_, 1, x[w]);
  }
  out[0] = u0;
  out[1] = u1;
}

void GraphicalCoordinationGame::fill_potential_row(
    size_t v, double phi, const Profile& x, std::span<double> out) const {
  const Strategy cur = x[v];
  double d0 = 0.0, d1 = 0.0;
  for (uint32_t w : graph_.neighbors(uint32_t(v))) {
    const double cur_edge =
        CoordinationGame::edge_potential(payoffs_, cur, x[w]);
    d0 += CoordinationGame::edge_potential(payoffs_, 0, x[w]) - cur_edge;
    d1 += CoordinationGame::edge_potential(payoffs_, 1, x[w]) - cur_edge;
  }
  out[0] = phi + d0;
  out[1] = phi + d1;
}

void GraphicalCoordinationGame::potential_row(int player, Profile& x,
                                              std::span<double> out) const {
  LD_CHECK(out.size() == 2,
           "GraphicalCoordinationGame::potential_row: 2 strategies expected");
  fill_potential_row(size_t(player), potential(x), x, out);
}

void GraphicalCoordinationGame::utility_rows(Profile& x,
                                             std::span<double> flat) const {
  Game::utility_rows(x, flat);  // n already-local utility_row calls
}

void GraphicalCoordinationGame::potential_rows(Profile& x,
                                               std::span<double> flat) const {
  LD_CHECK(flat.size() == space_.total_strategies(),
           "GraphicalCoordinationGame::potential_rows: size mismatch");
  const double phi = potential(x);
  for (size_t v = 0; v < x.size(); ++v) {
    fill_potential_row(v, phi, x, flat.subspan(2 * v, 2));
  }
}

std::string GraphicalCoordinationGame::name() const {
  return "graphical-coordination(n=" + std::to_string(graph_.num_vertices()) +
         ")";
}

double GraphicalCoordinationGame::potential_delta(int player, const Profile& x,
                                                  Strategy s) const {
  const Strategy cur = x[size_t(player)];
  if (cur == s) return 0.0;
  double delta = 0.0;
  for (uint32_t w : graph_.neighbors(uint32_t(player))) {
    delta += CoordinationGame::edge_potential(payoffs_, s, x[w]) -
             CoordinationGame::edge_potential(payoffs_, cur, x[w]);
  }
  return delta;
}

double GraphicalCoordinationGame::monochromatic_potential(Strategy s) const {
  const double per_edge =
      CoordinationGame::edge_potential(payoffs_, s, s);
  return per_edge * double(graph_.num_edges());
}

}  // namespace logitdyn
