#include "games/graphical_coordination.hpp"

#include "support/error.hpp"

namespace logitdyn {

namespace {

double edge_payoff(const CoordinationPayoffs& p, Strategy mine,
                   Strategy theirs) {
  if (mine == 0) return theirs == 0 ? p.a : p.c;
  return theirs == 0 ? p.d : p.b;
}

}  // namespace

GraphicalCoordinationGame::GraphicalCoordinationGame(
    Graph graph, CoordinationPayoffs payoffs)
    : graph_(std::move(graph)),
      space_(int(graph_.num_vertices()), 2),
      payoffs_(payoffs) {
  LD_CHECK(graph_.num_vertices() >= 1,
           "GraphicalCoordinationGame: empty graph");
  LD_CHECK(payoffs_.delta0() > 0 && payoffs_.delta1() > 0,
           "GraphicalCoordinationGame: need delta0, delta1 > 0");
}

double GraphicalCoordinationGame::potential(const Profile& x) const {
  double phi = 0.0;
  for (const Edge& e : graph_.edges()) {
    phi += CoordinationGame::edge_potential(payoffs_, x[e.u], x[e.v]);
  }
  return phi;
}

double GraphicalCoordinationGame::utility(int player, const Profile& x) const {
  const Strategy mine = x[size_t(player)];
  double u = 0.0;
  for (uint32_t w : graph_.neighbors(uint32_t(player))) {
    u += edge_payoff(payoffs_, mine, x[w]);
  }
  return u;
}

std::string GraphicalCoordinationGame::name() const {
  return "graphical-coordination(n=" + std::to_string(graph_.num_vertices()) +
         ")";
}

double GraphicalCoordinationGame::potential_delta(int player, const Profile& x,
                                                  Strategy s) const {
  const Strategy cur = x[size_t(player)];
  if (cur == s) return 0.0;
  double delta = 0.0;
  for (uint32_t w : graph_.neighbors(uint32_t(player))) {
    delta += CoordinationGame::edge_potential(payoffs_, s, x[w]) -
             CoordinationGame::edge_potential(payoffs_, cur, x[w]);
  }
  return delta;
}

double GraphicalCoordinationGame::monochromatic_potential(Strategy s) const {
  const double per_edge =
      CoordinationGame::edge_potential(payoffs_, s, s);
  return per_edge * double(graph_.num_edges());
}

}  // namespace logitdyn
