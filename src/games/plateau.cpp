#include "games/plateau.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/math.hpp"

namespace logitdyn {

PlateauGame::PlateauGame(int num_players, double global_variation,
                         double local_variation)
    : space_(num_players, 2), g_(global_variation), l_(local_variation) {
  LD_CHECK(l_ > 0, "PlateauGame: local variation must be positive");
  LD_CHECK(g_ >= l_, "PlateauGame: requires l <= g");
  const double c = g_ / l_;
  LD_CHECK(almost_equal(c, std::round(c), 1e-9, 1e-9),
           "PlateauGame: g/l must be an integer, got ", c);
  c_ = int(std::lround(c));
  LD_CHECK(c_ >= 1, "PlateauGame: need c = g/l >= 1");
  LD_CHECK(2.0 * g_ / double(num_players) <= l_,
           "PlateauGame: requires 2g/n <= l (i.e. c <= n/2)");
}

double PlateauGame::potential_of_weight(int k) const {
  LD_CHECK(k >= 0 && k <= num_players(), "PlateauGame: weight out of range");
  return -l_ * std::min(double(c_), std::abs(double(c_) - double(k)));
}

double PlateauGame::potential(const Profile& x) const {
  int w = 0;
  for (Strategy s : x) w += (s == 1);
  return potential_of_weight(w);
}

void PlateauGame::potential_row(int player, Profile& x,
                                std::span<double> out) const {
  LD_CHECK(out.size() == 2, "PlateauGame::potential_row: 2 strategies");
  int w_rest = 0;
  for (size_t j = 0; j < x.size(); ++j) {
    w_rest += (int(j) != player && x[j] == 1);
  }
  out[0] = potential_of_weight(w_rest);
  out[1] = potential_of_weight(w_rest + 1);
}

void PlateauGame::potential_rows(Profile& x, std::span<double> flat) const {
  LD_CHECK(flat.size() == space_.total_strategies(),
           "PlateauGame::potential_rows: output size mismatch");
  int w = 0;
  for (Strategy s : x) w += (s == 1);
  for (size_t i = 0; i < x.size(); ++i) {
    const int w_rest = w - (x[i] == 1);
    flat[2 * i] = potential_of_weight(w_rest);
    flat[2 * i + 1] = potential_of_weight(w_rest + 1);
  }
}

std::string PlateauGame::name() const {
  return "plateau(n=" + std::to_string(num_players()) +
         ",g=" + std::to_string(g_) + ",l=" + std::to_string(l_) + ")";
}

}  // namespace logitdyn
