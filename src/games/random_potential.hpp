// Random game generators for property-based tests and spectrum sweeps.
#pragma once

#include "games/table_game.hpp"
#include "rng/rng.hpp"

namespace logitdyn {

/// Random exact potential game: Phi(x) ~ Uniform[0, range] i.i.d. per
/// profile, identical-interest utilities.
TablePotentialGame make_random_potential_game(ProfileSpace space,
                                              double range, Rng& rng);

/// Random general game: independent uniform utilities per (player,
/// profile) — almost surely *not* a potential game for n >= 2; used to
/// exercise the general-chain (non-Gibbs) code paths.
TableGame make_random_game(ProfileSpace space, double range, Rng& rng);

}  // namespace logitdyn
