#include "games/coordination.hpp"

#include "support/error.hpp"

namespace logitdyn {

CoordinationGame::CoordinationGame(CoordinationPayoffs payoffs)
    : space_(2, 2), payoffs_(payoffs) {
  LD_CHECK(payoffs_.delta0() > 0,
           "CoordinationGame: requires delta0 = a - d > 0");
  LD_CHECK(payoffs_.delta1() > 0,
           "CoordinationGame: requires delta1 = b - c > 0");
}

double CoordinationGame::edge_potential(const CoordinationPayoffs& p,
                                        Strategy s, Strategy t) {
  if (s == 0 && t == 0) return -p.delta0();
  if (s == 1 && t == 1) return -p.delta1();
  return 0.0;
}

double CoordinationGame::potential(const Profile& x) const {
  return edge_potential(payoffs_, x[0], x[1]);
}

double CoordinationGame::utility(int player, const Profile& x) const {
  const Strategy mine = x[size_t(player)];
  const Strategy theirs = x[size_t(1 - player)];
  if (mine == 0) return theirs == 0 ? payoffs_.a : payoffs_.c;
  return theirs == 0 ? payoffs_.d : payoffs_.b;
}

void CoordinationGame::utility_row(int player, Profile& x,
                                   std::span<double> out) const {
  LD_CHECK(out.size() == 2, "CoordinationGame::utility_row: 2 strategies");
  const Strategy theirs = x[size_t(1 - player)];
  out[0] = theirs == 0 ? payoffs_.a : payoffs_.c;
  out[1] = theirs == 0 ? payoffs_.d : payoffs_.b;
}

void CoordinationGame::utility_rows(Profile& x, std::span<double> flat) const {
  Game::utility_rows(x, flat);  // two O(1) utility_row calls
}

int CoordinationGame::risk_dominant_equilibrium() const {
  if (payoffs_.delta0() > payoffs_.delta1()) return -1;
  if (payoffs_.delta0() < payoffs_.delta1()) return +1;
  return 0;
}

}  // namespace logitdyn
