// The strategic-game interfaces.
//
// Sign convention (see DESIGN.md §5): potential minima are the preferred
// outcomes and the Gibbs measure is pi(x) ∝ exp(-beta * Phi(x)). Exactness
// (the paper's Eq. (1)) reads
//     u_i(a, x_{-i}) - u_i(b, x_{-i}) = Phi(b, x_{-i}) - Phi(a, x_{-i}).
#pragma once

#include <string>

#include "games/profile.hpp"

namespace logitdyn {

/// A finite n-player strategic game. Implementations must be cheap to call:
/// `utility` sits in the innermost loop of chain construction & simulation.
class Game {
 public:
  virtual ~Game() = default;

  virtual const ProfileSpace& space() const = 0;

  /// Payoff of `player` under profile `x`.
  virtual double utility(int player, const Profile& x) const = 0;

  virtual std::string name() const = 0;

  int num_players() const { return space().num_players(); }
  int32_t num_strategies(int player) const {
    return space().num_strategies(player);
  }
};

/// A game admitting an exact potential Phi (paper Eq. (1)).
///
/// The default `utility` is the identical-interest representation
/// u_i = -Phi, which satisfies Eq. (1) trivially; subclasses with natural
/// per-player payoffs (e.g. graphical coordination games) override it, and
/// the test suite checks Eq. (1) holds for every override.
class PotentialGame : public Game {
 public:
  virtual double potential(const Profile& x) const = 0;

  double utility(int /*player*/, const Profile& x) const override {
    return -potential(x);
  }
};

/// True iff `s` weakly dominates every other strategy of `player`
/// (checked by brute force over all opponent sub-profiles).
bool is_dominant_strategy(const Game& game, int player, Strategy s);

/// True iff every player has a weakly dominant strategy forming `profile`.
bool is_dominant_profile(const Game& game, const Profile& profile);

/// True iff `x` is a pure Nash equilibrium.
bool is_pure_nash(const Game& game, const Profile& x);

}  // namespace logitdyn
