// The strategic-game interfaces.
//
// Sign convention (see DESIGN.md §5): potential minima are the preferred
// outcomes and the Gibbs measure is pi(x) ∝ exp(-beta * Phi(x)). Exactness
// (the paper's Eq. (1)) reads
//     u_i(a, x_{-i}) - u_i(b, x_{-i}) = Phi(b, x_{-i}) - Phi(a, x_{-i}).
#pragma once

#include <span>
#include <string>

#include "games/profile.hpp"

namespace logitdyn {

/// A finite n-player strategic game. Implementations must be cheap to call:
/// `utility` and `utility_row` sit in the innermost loop of chain
/// construction & simulation.
class Game {
 public:
  virtual ~Game() = default;

  virtual const ProfileSpace& space() const = 0;

  /// Payoff of `player` under profile `x`.
  virtual double utility(int player, const Profile& x) const = 0;

  /// Local-move utility oracle (see DESIGN.md §6): fills
  ///   out[s] = u_player(s, x_{-player})   for s in [0, |S_player|),
  /// i.e. the utilities of every candidate strategy of `player` at the
  /// fixed opponent sub-profile x_{-player}. This is the only shape of
  /// utility query the logit dynamics ever makes (paper Eqs. (2)-(3)), so
  /// the hot paths call this instead of m separate `utility` calls.
  ///
  /// `x` is scratch: implementations may overwrite x[player] but must
  /// restore it before returning. `out.size()` must equal |S_player|.
  ///
  /// The default loops over the virtual `utility` (full recompute per
  /// candidate). Subclasses override it with incremental evaluations that
  /// share the opponent-dependent work across the row; overrides must
  /// agree with `utility` to ~1e-12 on every entry (tested).
  virtual void utility_row(int player, Profile& x,
                           std::span<double> out) const;

  /// Batched oracle: the utility rows of EVERY player at one profile,
  /// concatenated into `flat` (player i's row occupies the |S_i| entries
  /// after the rows of players 0..i-1; flat.size() must equal
  /// space().total_strategies()). This is one full profile-column of the
  /// chain-construction loop (Eq. (3) touches exactly these values per
  /// state), so transition builders call it once per profile.
  ///
  /// Same scratch contract as `utility_row`. The default makes n
  /// utility_row calls; games whose row setup is shared across players
  /// (congestion loads, Ising energy, table encodes) override it to pay
  /// that setup once per profile instead of once per row.
  virtual void utility_rows(Profile& x, std::span<double> flat) const;

  virtual std::string name() const = 0;

  int num_players() const { return space().num_players(); }
  int32_t num_strategies(int player) const {
    return space().num_strategies(player);
  }
};

/// A game admitting an exact potential Phi (paper Eq. (1)).
///
/// The default `utility` is the identical-interest representation
/// u_i = -Phi, which satisfies Eq. (1) trivially; subclasses with natural
/// per-player payoffs (e.g. graphical coordination games) override it, and
/// the test suite checks Eq. (1) holds for every override.
class PotentialGame : public Game {
 public:
  virtual double potential(const Profile& x) const = 0;

  double utility(int /*player*/, const Profile& x) const override {
    return -potential(x);
  }

  /// Row analogue of `potential` (the potential-side oracle): fills
  ///   out[s] = Phi(s, x_{-player})   for s in [0, |S_player|).
  /// Same scratch contract as `Game::utility_row`. The default loops over
  /// the virtual `potential`; subclasses override it with single-pass
  /// potential deltas (local fields, Rosenthal deltas, weight counts).
  virtual void potential_row(int player, Profile& x,
                             std::span<double> out) const;

  /// Batched analogue of `potential_row` (layout as in
  /// Game::utility_rows). Default: n potential_row calls.
  virtual void potential_rows(Profile& x, std::span<double> flat) const;

  /// For the identical-interest representation u_i = -Phi the utility row
  /// is the negated potential row, so any `potential_row` override
  /// accelerates `utility_row` for free. Subclasses with overridden
  /// per-player `utility` must override `utility_row` to match.
  void utility_row(int player, Profile& x,
                   std::span<double> out) const override;

  /// Negated `potential_rows` — batched potential overrides accelerate
  /// the batched utility oracle for free.
  void utility_rows(Profile& x, std::span<double> flat) const override;
};

/// True iff `s` weakly dominates every other strategy of `player`
/// (checked by brute force over all opponent sub-profiles).
bool is_dominant_strategy(const Game& game, int player, Strategy s);

/// True iff every player has a weakly dominant strategy forming `profile`.
bool is_dominant_profile(const Game& game, const Profile& profile);

/// True iff `x` is a pure Nash equilibrium.
bool is_pure_nash(const Game& game, const Profile& x);

}  // namespace logitdyn
