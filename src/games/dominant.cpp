#include "games/dominant.hpp"

#include "support/error.hpp"

namespace logitdyn {

AllOrNothingGame::AllOrNothingGame(int num_players, int32_t num_strategies)
    : space_(num_players, num_strategies) {
  LD_CHECK(num_players >= 2, "AllOrNothingGame: need n >= 2");
  LD_CHECK(num_strategies >= 2, "AllOrNothingGame: need m >= 2");
}

double AllOrNothingGame::potential(const Profile& x) const {
  for (Strategy s : x) {
    if (s != 0) return 1.0;
  }
  return 0.0;
}

std::string AllOrNothingGame::name() const {
  return "all-or-nothing(n=" + std::to_string(num_players()) +
         ",m=" + std::to_string(num_strategies(0)) + ")";
}

}  // namespace logitdyn
