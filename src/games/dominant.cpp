#include "games/dominant.hpp"

#include "support/error.hpp"

namespace logitdyn {

AllOrNothingGame::AllOrNothingGame(int num_players, int32_t num_strategies)
    : space_(num_players, num_strategies) {
  LD_CHECK(num_players >= 2, "AllOrNothingGame: need n >= 2");
  LD_CHECK(num_strategies >= 2, "AllOrNothingGame: need m >= 2");
}

double AllOrNothingGame::potential(const Profile& x) const {
  for (Strategy s : x) {
    if (s != 0) return 1.0;
  }
  return 0.0;
}

void AllOrNothingGame::potential_row(int player, Profile& x,
                                     std::span<double> out) const {
  LD_CHECK(out.size() == size_t(num_strategies(player)),
           "AllOrNothingGame::potential_row: output size mismatch");
  bool rest_nonzero = false;
  for (size_t j = 0; j < x.size(); ++j) {
    if (int(j) != player && x[j] != 0) {
      rest_nonzero = true;
      break;
    }
  }
  out[0] = rest_nonzero ? 1.0 : 0.0;
  for (size_t s = 1; s < out.size(); ++s) out[s] = 1.0;
}

void AllOrNothingGame::potential_rows(Profile& x,
                                      std::span<double> flat) const {
  LD_CHECK(flat.size() == space_.total_strategies(),
           "AllOrNothingGame::potential_rows: output size mismatch");
  int nonzero = 0;
  for (Strategy s : x) nonzero += (s != 0);
  const size_t m = size_t(num_strategies(0));
  for (size_t i = 0; i < x.size(); ++i) {
    const bool rest_nonzero = (nonzero - (x[i] != 0)) > 0;
    flat[i * m] = rest_nonzero ? 1.0 : 0.0;
    for (size_t s = 1; s < m; ++s) flat[i * m + s] = 1.0;
  }
}

std::string AllOrNothingGame::name() const {
  return "all-or-nothing(n=" + std::to_string(num_players()) +
         ",m=" + std::to_string(num_strategies(0)) + ")";
}

}  // namespace logitdyn
