// Iterated elimination of dominated strategies.
//
// Section 4 of the paper extends its beta-free mixing bound from
// dominant-strategy games to max-solvable games (Nisan–Schapira–Zohar);
// the classical gateway to that family is dominance solvability, which
// this module decides constructively. Elimination is over pure strategies
// against surviving opponent sub-profiles.
#pragma once

#include <vector>

#include "games/game.hpp"

namespace logitdyn {

enum class DominanceMode {
  kStrict,  ///< eliminate s if some t beats it against ALL survivors
  kWeak,    ///< eliminate s if some t is never worse and once better
};

struct DominanceResult {
  /// surviving[i] = surviving strategies of player i, ascending.
  std::vector<std::vector<Strategy>> surviving;
  /// Elimination order as (player, strategy) pairs.
  std::vector<std::pair<int, Strategy>> eliminated;

  bool solvable() const {
    for (const auto& s : surviving) {
      if (s.size() != 1) return false;
    }
    return true;
  }
};

/// Run iterated elimination to a fixed point. With kWeak the surviving set
/// can depend on elimination order; this implementation removes one
/// dominated strategy at a time, scanning players round-robin (a fixed,
/// documented order, so results are deterministic).
DominanceResult iterated_dominance(const Game& game, DominanceMode mode);

/// True iff iterated elimination (given mode) leaves one profile.
bool is_dominance_solvable(const Game& game,
                           DominanceMode mode = DominanceMode::kWeak);

}  // namespace logitdyn
