// The Ising model as a potential game.
//
// The paper (Sect. 1/5) observes that Glauber dynamics on the Ising model
// *is* the logit dynamics on a graphical coordination game without risk
// dominant equilibria. This module provides the Ising side of that
// dictionary so the equivalence can be checked exactly.
#pragma once

#include <string>

#include "games/game.hpp"
#include "games/graphical_coordination.hpp"
#include "graph/graph.hpp"

namespace logitdyn {

/// Ising model on a graph: spins sigma_v = 2*x_v - 1 in {-1,+1}, energy
/// H(sigma) = -J * sum_{(u,v) in E} sigma_u sigma_v - h * sum_v sigma_v.
/// As a potential game, Phi = H (minima = ground states).
class IsingGame : public PotentialGame {
 public:
  IsingGame(Graph graph, double coupling, double field = 0.0);

  const ProfileSpace& space() const override { return space_; }
  double potential(const Profile& x) const override;

  /// Incremental oracle via the local field: one O(|E|) energy pass plus
  /// an O(deg) neighbour-spin sum gives the whole row, instead of one
  /// O(|E|) pass per candidate spin.
  void potential_row(int player, Profile& x,
                     std::span<double> out) const override;

  /// Batched oracle: one O(|E|) energy evaluation shared by every
  /// vertex's local field — O(|E| + sum deg) per profile instead of
  /// O(n * |E|).
  void potential_rows(Profile& x, std::span<double> flat) const override;

  std::string name() const override;

  const Graph& graph() const { return graph_; }
  double coupling() const { return coupling_; }
  double field() const { return field_; }

  /// Magnetization sum_v sigma_v in [-n, n].
  double magnetization(const Profile& x) const;

  /// The coordination game whose logit dynamics coincides with this
  /// model's Glauber dynamics (zero-field case): delta0 = delta1 = 2J.
  /// Their potentials differ by the constant J*|E|, which cancels from
  /// both sigma_i and pi.
  GraphicalCoordinationGame equivalent_coordination_game() const;

 private:
  /// Fill the 2-entry row of vertex `v` from its local field, given the
  /// total energy of profile `x` (shared by the single and batched row).
  void fill_spin_row(size_t v, double energy, const Profile& x,
                     std::span<double> out) const;

  Graph graph_;
  ProfileSpace space_;
  double coupling_, field_;
};

}  // namespace logitdyn
