#include "games/congestion.hpp"

#include "support/error.hpp"

namespace logitdyn {

ProfileSpace CongestionGame::make_space(
    const std::vector<std::vector<std::vector<int>>>& strategies) {
  LD_CHECK(!strategies.empty(), "CongestionGame: need at least one player");
  std::vector<int32_t> sizes;
  sizes.reserve(strategies.size());
  for (const auto& per_player : strategies) {
    LD_CHECK(!per_player.empty(),
             "CongestionGame: every player needs a strategy");
    sizes.push_back(int32_t(per_player.size()));
  }
  return ProfileSpace(std::move(sizes));
}

CongestionGame::CongestionGame(
    int num_resources, std::vector<std::vector<std::vector<int>>> strategies,
    std::vector<std::vector<double>> latency)
    : num_resources_(num_resources),
      strategies_(std::move(strategies)),
      latency_(std::move(latency)),
      space_(make_space(strategies_)) {
  LD_CHECK(num_resources_ >= 1, "CongestionGame: need resources");
  LD_CHECK(latency_.size() == size_t(num_resources_),
           "CongestionGame: one latency vector per resource");
  const size_t n = strategies_.size();
  for (const auto& lat : latency_) {
    LD_CHECK(lat.size() >= n,
             "CongestionGame: latency must be defined up to load n");
  }
  for (const auto& per_player : strategies_) {
    for (const auto& subset : per_player) {
      for (int r : subset) {
        LD_CHECK(r >= 0 && r < num_resources_,
                 "CongestionGame: resource id out of range");
      }
    }
  }
}

std::vector<int> CongestionGame::loads(const Profile& x) const {
  std::vector<int> load(size_t(num_resources_), 0);
  for (size_t i = 0; i < x.size(); ++i) {
    for (int r : strategies_[i][size_t(x[i])]) load[size_t(r)] += 1;
  }
  return load;
}

double CongestionGame::potential(const Profile& x) const {
  const std::vector<int> load = loads(x);
  double phi = 0.0;
  for (int r = 0; r < num_resources_; ++r) {
    for (int k = 1; k <= load[size_t(r)]; ++k) {
      phi += latency_[size_t(r)][size_t(k - 1)];
    }
  }
  return phi;
}

double CongestionGame::utility(int player, const Profile& x) const {
  const std::vector<int> load = loads(x);
  double cost = 0.0;
  for (int r : strategies_[size_t(player)][size_t(x[size_t(player)])]) {
    cost += latency_[size_t(r)][size_t(load[size_t(r)] - 1)];
  }
  return -cost;
}

double CongestionGame::social_welfare(const Profile& x) const {
  double welfare = 0.0;
  for (int i = 0; i < num_players(); ++i) welfare += utility(i, x);
  return welfare;
}

std::string CongestionGame::name() const {
  return "congestion(n=" + std::to_string(num_players()) +
         ",r=" + std::to_string(num_resources_) + ")";
}

CongestionGame make_parallel_links_game(int num_players,
                                        std::vector<double> slope,
                                        std::vector<double> offset) {
  LD_CHECK(slope.size() == offset.size() && !slope.empty(),
           "make_parallel_links_game: slope/offset size mismatch");
  const int m = int(slope.size());
  std::vector<std::vector<std::vector<int>>> strategies(
      static_cast<size_t>(num_players));
  for (auto& per_player : strategies) {
    per_player.resize(size_t(m));
    for (int r = 0; r < m; ++r) per_player[size_t(r)] = {r};
  }
  std::vector<std::vector<double>> latency(static_cast<size_t>(m));
  for (int r = 0; r < m; ++r) {
    latency[size_t(r)].resize(size_t(num_players));
    for (int k = 1; k <= num_players; ++k) {
      latency[size_t(r)][size_t(k - 1)] = slope[size_t(r)] * k + offset[size_t(r)];
    }
  }
  return CongestionGame(m, std::move(strategies), std::move(latency));
}

}  // namespace logitdyn
