#include "games/congestion.hpp"

#include "support/error.hpp"

namespace logitdyn {

ProfileSpace CongestionGame::make_space(
    const std::vector<std::vector<std::vector<int>>>& strategies) {
  LD_CHECK(!strategies.empty(), "CongestionGame: need at least one player");
  std::vector<int32_t> sizes;
  sizes.reserve(strategies.size());
  for (const auto& per_player : strategies) {
    LD_CHECK(!per_player.empty(),
             "CongestionGame: every player needs a strategy");
    sizes.push_back(int32_t(per_player.size()));
  }
  return ProfileSpace(std::move(sizes));
}

CongestionGame::CongestionGame(
    int num_resources, std::vector<std::vector<std::vector<int>>> strategies,
    std::vector<std::vector<double>> latency)
    : num_resources_(num_resources),
      strategies_(std::move(strategies)),
      latency_(std::move(latency)),
      space_(make_space(strategies_)) {
  LD_CHECK(num_resources_ >= 1, "CongestionGame: need resources");
  LD_CHECK(latency_.size() == size_t(num_resources_),
           "CongestionGame: one latency vector per resource");
  const size_t n = strategies_.size();
  for (const auto& lat : latency_) {
    LD_CHECK(lat.size() >= n,
             "CongestionGame: latency must be defined up to load n");
  }
  for (const auto& per_player : strategies_) {
    for (const auto& subset : per_player) {
      for (int r : subset) {
        LD_CHECK(r >= 0 && r < num_resources_,
                 "CongestionGame: resource id out of range");
      }
    }
  }
}

std::vector<int> CongestionGame::loads(const Profile& x) const {
  std::vector<int> load(size_t(num_resources_), 0);
  for (size_t i = 0; i < x.size(); ++i) {
    for (int r : strategies_[i][size_t(x[i])]) load[size_t(r)] += 1;
  }
  return load;
}

double CongestionGame::potential(const Profile& x) const {
  const std::vector<int> load = loads(x);
  double phi = 0.0;
  for (int r = 0; r < num_resources_; ++r) {
    for (int k = 1; k <= load[size_t(r)]; ++k) {
      phi += latency_[size_t(r)][size_t(k - 1)];
    }
  }
  return phi;
}

double CongestionGame::utility(int player, const Profile& x) const {
  const std::vector<int> load = loads(x);
  double cost = 0.0;
  for (int r : strategies_[size_t(player)][size_t(x[size_t(player)])]) {
    cost += latency_[size_t(r)][size_t(load[size_t(r)] - 1)];
  }
  return -cost;
}

const std::vector<int>& CongestionGame::opponent_loads(
    int player, const Profile& x) const {
  thread_local std::vector<int> base_load;
  base_load.assign(size_t(num_resources_), 0);
  for (size_t j = 0; j < x.size(); ++j) {
    if (int(j) == player) continue;
    for (int r : strategies_[j][size_t(x[j])]) base_load[size_t(r)] += 1;
  }
  return base_load;
}

void CongestionGame::utility_row(int player, Profile& x,
                                 std::span<double> out) const {
  LD_CHECK(out.size() == size_t(num_strategies(player)),
           "utility_row: output size mismatch");
  // Loads with `player` removed, shared across the whole candidate row.
  const std::vector<int>& base_load = opponent_loads(player, x);
  const auto& mine = strategies_[size_t(player)];
  for (size_t s = 0; s < out.size(); ++s) {
    double cost = 0.0;
    // Joining resource r raises its load to base_load[r] + 1, so the
    // player pays latency[r][base_load[r]] — same terms, same order as
    // `utility`, hence bit-identical results.
    for (int r : mine[s]) {
      cost += latency_[size_t(r)][size_t(base_load[size_t(r)])];
    }
    out[s] = -cost;
  }
}

void CongestionGame::utility_rows(Profile& x, std::span<double> flat) const {
  LD_CHECK(flat.size() == space_.total_strategies(),
           "utility_rows: output size mismatch");
  thread_local std::vector<int> load;
  load.assign(size_t(num_resources_), 0);
  for (size_t j = 0; j < x.size(); ++j) {
    for (int r : strategies_[j][size_t(x[j])]) load[size_t(r)] += 1;
  }
  size_t offset = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const auto& mine = strategies_[i];
    const auto& current = mine[size_t(x[i])];
    // Temporarily remove player i: the decremented loads are exactly the
    // base loads utility_row computes from scratch, so each entry is
    // bit-identical to the single-row oracle (and to `utility`).
    for (int r : current) load[size_t(r)] -= 1;
    for (size_t s = 0; s < mine.size(); ++s) {
      double cost = 0.0;
      for (int r : mine[s]) {
        cost += latency_[size_t(r)][size_t(load[size_t(r)])];
      }
      flat[offset + s] = -cost;
    }
    for (int r : current) load[size_t(r)] += 1;
    offset += mine.size();
  }
}

void CongestionGame::potential_row(int player, Profile& x,
                                   std::span<double> out) const {
  LD_CHECK(out.size() == size_t(num_strategies(player)),
           "potential_row: output size mismatch");
  const std::vector<int>& base_load = opponent_loads(player, x);
  // Rosenthal potential of the opponents alone, computed once.
  double phi_base = 0.0;
  for (int r = 0; r < num_resources_; ++r) {
    for (int k = 1; k <= base_load[size_t(r)]; ++k) {
      phi_base += latency_[size_t(r)][size_t(k - 1)];
    }
  }
  const auto& mine = strategies_[size_t(player)];
  for (size_t s = 0; s < out.size(); ++s) {
    double delta = 0.0;
    for (int r : mine[s]) {
      delta += latency_[size_t(r)][size_t(base_load[size_t(r)])];
    }
    out[s] = phi_base + delta;
  }
}

double CongestionGame::social_welfare(const Profile& x) const {
  double welfare = 0.0;
  for (int i = 0; i < num_players(); ++i) welfare += utility(i, x);
  return welfare;
}

std::string CongestionGame::name() const {
  return "congestion(n=" + std::to_string(num_players()) +
         ",r=" + std::to_string(num_resources_) + ")";
}

CongestionGame make_parallel_links_game(int num_players,
                                        std::vector<double> slope,
                                        std::vector<double> offset) {
  LD_CHECK(slope.size() == offset.size() && !slope.empty(),
           "make_parallel_links_game: slope/offset size mismatch");
  const int m = int(slope.size());
  std::vector<std::vector<std::vector<int>>> strategies(
      static_cast<size_t>(num_players));
  for (auto& per_player : strategies) {
    per_player.resize(size_t(m));
    for (int r = 0; r < m; ++r) per_player[size_t(r)] = {r};
  }
  std::vector<std::vector<double>> latency(static_cast<size_t>(m));
  for (int r = 0; r < m; ++r) {
    latency[size_t(r)].resize(size_t(num_players));
    for (int k = 1; k <= num_players; ++k) {
      latency[size_t(r)][size_t(k - 1)] = slope[size_t(r)] * k + offset[size_t(r)];
    }
  }
  return CongestionGame(m, std::move(strategies), std::move(latency));
}

}  // namespace logitdyn
