// The oracle-hiding baseline wrapper.
//
// Forwards `utility` but hides every utility_row/utility_rows override,
// so all row queries go through the default per-strategy loops — the
// pre-oracle evaluation path. Tests compare the oracle against it for
// exact agreement; benchmarks use it as the naive baseline.
#pragma once

#include <string>

#include "games/game.hpp"

namespace logitdyn {

class NaiveRowGame : public Game {
 public:
  explicit NaiveRowGame(const Game& inner) : inner_(inner) {}

  const ProfileSpace& space() const override { return inner_.space(); }
  double utility(int player, const Profile& x) const override {
    return inner_.utility(player, x);
  }
  std::string name() const override { return "naive(" + inner_.name() + ")"; }

 private:
  const Game& inner_;
};

}  // namespace logitdyn
