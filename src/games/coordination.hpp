// The 2x2 coordination game of Section 5 (paper Eq. (10)): the basic
// building block of graphical coordination games.
#pragma once

#include <string>

#include "games/game.hpp"

namespace logitdyn {

/// Payoff matrix of the basic coordination game:
///
///             0         1
///    0 |  a, a   |  c, d  |
///    1 |  d, c   |  b, b  |
///
/// with delta0 = a - d > 0 and delta1 = b - c > 0 so both (0,0) and (1,1)
/// are strict Nash equilibria.
struct CoordinationPayoffs {
  double a, b, c, d;

  double delta0() const { return a - d; }
  double delta1() const { return b - c; }

  /// Symmetric payoffs with given equilibrium gaps (c = d = 0).
  static CoordinationPayoffs from_deltas(double delta0, double delta1) {
    return {delta0, delta1, 0.0, 0.0};
  }
};

/// The two-player 2x2 coordination game as a PotentialGame. The potential
/// (paper Sect. 5) is phi(0,0) = -delta0, phi(1,1) = -delta1, else 0.
class CoordinationGame : public PotentialGame {
 public:
  explicit CoordinationGame(CoordinationPayoffs payoffs);

  const ProfileSpace& space() const override { return space_; }
  double potential(const Profile& x) const override;
  double utility(int player, const Profile& x) const override;

  /// O(1) oracle: the opponent's strategy selects one payoff column.
  void utility_row(int player, Profile& x,
                   std::span<double> out) const override;

  /// Bypass PotentialGame's negated-potential batch: the per-player
  /// payoffs are not -Phi.
  void utility_rows(Profile& x, std::span<double> flat) const override;

  std::string name() const override { return "coordination-2x2"; }

  const CoordinationPayoffs& payoffs() const { return payoffs_; }

  /// -1 if (0,0) is risk dominant, +1 if (1,1) is, 0 if neither.
  int risk_dominant_equilibrium() const;

  /// Edge potential phi(s, t) for strategies s, t (used by the graphical
  /// game and by tests).
  static double edge_potential(const CoordinationPayoffs& p, Strategy s,
                               Strategy t);

 private:
  ProfileSpace space_;
  CoordinationPayoffs payoffs_;
};

}  // namespace logitdyn
