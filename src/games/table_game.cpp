#include "games/table_game.hpp"

#include <cmath>

#include "support/error.hpp"

namespace logitdyn {

TableGame::TableGame(ProfileSpace space,
                     std::vector<std::vector<double>> utilities,
                     std::string name)
    : space_(std::move(space)),
      utilities_(std::move(utilities)),
      name_(std::move(name)) {
  LD_CHECK(utilities_.size() == size_t(space_.num_players()),
           "TableGame: one utility table per player required");
  for (const auto& table : utilities_) {
    LD_CHECK(table.size() == space_.num_profiles(),
             "TableGame: utility table size mismatch");
  }
}

TableGame TableGame::from_function(
    ProfileSpace space, const std::function<double(int, const Profile&)>& u,
    std::string name) {
  const int n = space.num_players();
  std::vector<std::vector<double>> tables(
      size_t(n), std::vector<double>(space.num_profiles()));
  Profile x;
  for (size_t idx = 0; idx < space.num_profiles(); ++idx) {
    space.decode_into(idx, x);
    for (int i = 0; i < n; ++i) tables[size_t(i)][idx] = u(i, x);
  }
  return TableGame(std::move(space), std::move(tables), std::move(name));
}

double TableGame::utility(int player, const Profile& x) const {
  return utilities_[size_t(player)][space_.index(x)];
}

TablePotentialGame::TablePotentialGame(ProfileSpace space,
                                       std::vector<double> phi,
                                       std::string name)
    : space_(std::move(space)), phi_(std::move(phi)), name_(std::move(name)) {
  LD_CHECK(phi_.size() == space_.num_profiles(),
           "TablePotentialGame: potential table size mismatch");
}

double TablePotentialGame::potential(const Profile& x) const {
  return phi_[space_.index(x)];
}

std::optional<std::vector<double>> extract_potential(const Game& game,
                                                     double tol) {
  const ProfileSpace& sp = game.space();
  const size_t total = sp.num_profiles();
  std::vector<double> phi(total, 0.0);
  Profile lo, hi;
  // Integrate along the lexicographic path: Phi(x) is built from the
  // profile obtained by zeroing x's least-significant nonzero digit, using
  // Eq. (1): Phi(x) = Phi(x with x_i -> 0) + u_i(0, x_{-i}) - u_i(x_i, x_{-i}).
  for (size_t idx = 1; idx < total; ++idx) {
    int player = -1;
    for (int i = 0; i < sp.num_players(); ++i) {
      if (sp.strategy_of(idx, i) != 0) {
        player = i;
        break;
      }
    }
    const size_t base = sp.with_strategy(idx, player, 0);
    sp.decode_into(idx, hi);
    lo = hi;
    lo[size_t(player)] = 0;
    phi[idx] =
        phi[base] + game.utility(player, lo) - game.utility(player, hi);
  }
  // Verify Eq. (1) on every Hamming edge; any violation means no exact
  // potential exists.
  Profile xa, xb;
  for (size_t idx = 0; idx < total; ++idx) {
    sp.decode_into(idx, xa);
    for (int i = 0; i < sp.num_players(); ++i) {
      const Strategy cur = xa[size_t(i)];
      const double u_cur = game.utility(i, xa);
      xb = xa;
      for (Strategy s = cur + 1; s < sp.num_strategies(i); ++s) {
        xb[size_t(i)] = s;
        const size_t jdx = sp.with_strategy(idx, i, s);
        const double lhs = u_cur - game.utility(i, xb);
        const double rhs = phi[jdx] - phi[idx];
        if (std::abs(lhs - rhs) > tol) return std::nullopt;
      }
    }
  }
  return phi;
}

}  // namespace logitdyn
