#include "games/table_game.hpp"

#include <cmath>

#include "support/error.hpp"

namespace logitdyn {

TableGame::TableGame(ProfileSpace space,
                     std::vector<std::vector<double>> utilities,
                     std::string name)
    : space_(std::move(space)),
      utilities_(std::move(utilities)),
      name_(std::move(name)) {
  LD_CHECK(utilities_.size() == size_t(space_.num_players()),
           "TableGame: one utility table per player required");
  for (const auto& table : utilities_) {
    LD_CHECK(table.size() == space_.num_profiles(),
             "TableGame: utility table size mismatch");
  }
}

TableGame TableGame::from_function(
    ProfileSpace space, const std::function<double(int, const Profile&)>& u,
    std::string name) {
  const int n = space.num_players();
  std::vector<std::vector<double>> tables(
      size_t(n), std::vector<double>(space.num_profiles()));
  Profile x;
  for (size_t idx = 0; idx < space.num_profiles(); ++idx) {
    space.decode_into(idx, x);
    for (int i = 0; i < n; ++i) tables[size_t(i)][idx] = u(i, x);
  }
  return TableGame(std::move(space), std::move(tables), std::move(name));
}

double TableGame::utility(int player, const Profile& x) const {
  return utilities_[size_t(player)][space_.index(x)];
}

void TableGame::utility_row(int player, Profile& x,
                            std::span<double> out) const {
  LD_CHECK(out.size() == size_t(space_.num_strategies(player)),
           "TableGame::utility_row: output size mismatch");
  const size_t stride = space_.stride(player);
  const size_t base =
      space_.index(x) - size_t(x[size_t(player)]) * stride;
  const std::vector<double>& table = utilities_[size_t(player)];
  for (size_t s = 0; s < out.size(); ++s) out[s] = table[base + s * stride];
}

void TableGame::utility_rows(Profile& x, std::span<double> flat) const {
  LD_CHECK(flat.size() == space_.total_strategies(),
           "TableGame::utility_rows: output size mismatch");
  const size_t idx = space_.index(x);
  size_t offset = 0;
  for (int i = 0; i < space_.num_players(); ++i) {
    const size_t stride = space_.stride(i);
    const size_t base = idx - size_t(x[size_t(i)]) * stride;
    const std::vector<double>& table = utilities_[size_t(i)];
    const size_t m = size_t(space_.num_strategies(i));
    for (size_t s = 0; s < m; ++s) flat[offset + s] = table[base + s * stride];
    offset += m;
  }
}

TablePotentialGame::TablePotentialGame(ProfileSpace space,
                                       std::vector<double> phi,
                                       std::string name)
    : space_(std::move(space)), phi_(std::move(phi)), name_(std::move(name)) {
  LD_CHECK(phi_.size() == space_.num_profiles(),
           "TablePotentialGame: potential table size mismatch");
}

double TablePotentialGame::potential(const Profile& x) const {
  return phi_[space_.index(x)];
}

void TablePotentialGame::potential_row(int player, Profile& x,
                                       std::span<double> out) const {
  LD_CHECK(out.size() == size_t(space_.num_strategies(player)),
           "TablePotentialGame::potential_row: output size mismatch");
  const size_t stride = space_.stride(player);
  const size_t base =
      space_.index(x) - size_t(x[size_t(player)]) * stride;
  for (size_t s = 0; s < out.size(); ++s) out[s] = phi_[base + s * stride];
}

void TablePotentialGame::potential_rows(Profile& x,
                                        std::span<double> flat) const {
  LD_CHECK(flat.size() == space_.total_strategies(),
           "TablePotentialGame::potential_rows: output size mismatch");
  const size_t idx = space_.index(x);
  size_t offset = 0;
  for (int i = 0; i < space_.num_players(); ++i) {
    const size_t stride = space_.stride(i);
    const size_t base = idx - size_t(x[size_t(i)]) * stride;
    const size_t m = size_t(space_.num_strategies(i));
    for (size_t s = 0; s < m; ++s) flat[offset + s] = phi_[base + s * stride];
    offset += m;
  }
}

std::optional<std::vector<double>> extract_potential(const Game& game,
                                                     double tol) {
  const ProfileSpace& sp = game.space();
  const size_t total = sp.num_profiles();
  std::vector<double> phi(total, 0.0);
  Profile lo, hi;
  // Integrate along the lexicographic path: Phi(x) is built from the
  // profile obtained by zeroing x's least-significant nonzero digit, using
  // Eq. (1): Phi(x) = Phi(x with x_i -> 0) + u_i(0, x_{-i}) - u_i(x_i, x_{-i}).
  for (size_t idx = 1; idx < total; ++idx) {
    int player = -1;
    for (int i = 0; i < sp.num_players(); ++i) {
      if (sp.strategy_of(idx, i) != 0) {
        player = i;
        break;
      }
    }
    const size_t base = sp.with_strategy(idx, player, 0);
    sp.decode_into(idx, hi);
    lo = hi;
    lo[size_t(player)] = 0;
    phi[idx] =
        phi[base] + game.utility(player, lo) - game.utility(player, hi);
  }
  // Verify Eq. (1) on every Hamming edge; any violation means no exact
  // potential exists. One row query per (profile, player) covers every
  // edge out of that profile along player i's coordinate.
  Profile xa;
  std::vector<double> row(size_t(sp.max_strategies()));
  for (size_t idx = 0; idx < total; ++idx) {
    sp.decode_into(idx, xa);
    for (int i = 0; i < sp.num_players(); ++i) {
      const Strategy cur = xa[size_t(i)];
      std::span<double> u(row.data(), size_t(sp.num_strategies(i)));
      game.utility_row(i, xa, u);
      for (Strategy s = cur + 1; s < sp.num_strategies(i); ++s) {
        const size_t jdx = sp.with_strategy(idx, i, s);
        const double lhs = u[size_t(cur)] - u[size_t(s)];
        const double rhs = phi[jdx] - phi[idx];
        if (std::abs(lhs - rhs) > tol) return std::nullopt;
      }
    }
  }
  return phi;
}

}  // namespace logitdyn
