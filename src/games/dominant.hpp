// Games with dominant strategies (paper Section 4).
//
// The AllOrNothingGame is the Theorem 4.3 construction: u_i(x) = 0 if
// x = (0,...,0) and -1 otherwise. Strategy 0 is weakly dominant for every
// player, the game is potential with Phi(x) = [x != 0], and for large beta
// the mixing time is Theta(m^{n-1}) — bounded in beta (Thm 4.2), huge in
// the game size (Thm 4.3).
#pragma once

#include <string>

#include "games/game.hpp"

namespace logitdyn {

class AllOrNothingGame : public PotentialGame {
 public:
  AllOrNothingGame(int num_players, int32_t num_strategies);

  const ProfileSpace& space() const override { return space_; }
  double potential(const Profile& x) const override;

  /// Incremental oracle: one O(n) scan for a nonzero opponent strategy,
  /// then every candidate is O(1).
  void potential_row(int player, Profile& x,
                     std::span<double> out) const override;

  /// Batched oracle: one O(n) nonzero count, O(m) per player.
  void potential_rows(Profile& x, std::span<double> flat) const override;

  std::string name() const override;

  /// Potential as a function of k = number of players *not* playing 0
  /// (the game is symmetric under permuting players and relabeling the
  /// nonzero strategies; the lumped chain lives on k).
  double potential_of_nonzero_count(int k) const { return k == 0 ? 0.0 : 1.0; }

 private:
  ProfileSpace space_;
};

}  // namespace logitdyn
