#include "games/game.hpp"

namespace logitdyn {

bool is_dominant_strategy(const Game& game, int player, Strategy s) {
  const ProfileSpace& sp = game.space();
  Profile x(size_t(sp.num_players()));
  // Enumerate all profiles; for each opponent sub-profile compare `s`
  // against every alternative of `player`.
  for (size_t idx = 0; idx < sp.num_profiles(); ++idx) {
    if (sp.strategy_of(idx, player) != s) continue;  // canonicalize x_i = s
    sp.decode_into(idx, x);
    const double u_s = game.utility(player, x);
    for (Strategy alt = 0; alt < sp.num_strategies(player); ++alt) {
      if (alt == s) continue;
      x[size_t(player)] = alt;
      if (game.utility(player, x) > u_s) return false;
      x[size_t(player)] = s;
    }
  }
  return true;
}

bool is_dominant_profile(const Game& game, const Profile& profile) {
  for (int i = 0; i < game.num_players(); ++i) {
    if (!is_dominant_strategy(game, i, profile[size_t(i)])) return false;
  }
  return true;
}

bool is_pure_nash(const Game& game, const Profile& x) {
  Profile y = x;
  for (int i = 0; i < game.num_players(); ++i) {
    const double u = game.utility(i, x);
    for (Strategy s = 0; s < game.num_strategies(i); ++s) {
      if (s == x[size_t(i)]) continue;
      y[size_t(i)] = s;
      if (game.utility(i, y) > u) return false;
    }
    y[size_t(i)] = x[size_t(i)];
  }
  return true;
}

}  // namespace logitdyn
