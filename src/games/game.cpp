#include "games/game.hpp"

#include "support/error.hpp"

namespace logitdyn {

void Game::utility_row(int player, Profile& x, std::span<double> out) const {
  LD_CHECK(out.size() == size_t(num_strategies(player)),
           "utility_row: output size mismatch");
  const Strategy saved = x[size_t(player)];
  for (Strategy s = 0; s < Strategy(out.size()); ++s) {
    x[size_t(player)] = s;
    out[size_t(s)] = utility(player, x);
  }
  x[size_t(player)] = saved;
}

void Game::utility_rows(Profile& x, std::span<double> flat) const {
  LD_CHECK(flat.size() == space().total_strategies(),
           "utility_rows: output size mismatch");
  size_t offset = 0;
  for (int i = 0; i < num_players(); ++i) {
    const size_t m = size_t(num_strategies(i));
    utility_row(i, x, flat.subspan(offset, m));
    offset += m;
  }
}

void PotentialGame::potential_row(int player, Profile& x,
                                  std::span<double> out) const {
  LD_CHECK(out.size() == size_t(num_strategies(player)),
           "potential_row: output size mismatch");
  const Strategy saved = x[size_t(player)];
  for (Strategy s = 0; s < Strategy(out.size()); ++s) {
    x[size_t(player)] = s;
    out[size_t(s)] = potential(x);
  }
  x[size_t(player)] = saved;
}

void PotentialGame::utility_row(int player, Profile& x,
                                std::span<double> out) const {
  potential_row(player, x, out);
  for (double& v : out) v = -v;
}

void PotentialGame::potential_rows(Profile& x, std::span<double> flat) const {
  LD_CHECK(flat.size() == space().total_strategies(),
           "potential_rows: output size mismatch");
  size_t offset = 0;
  for (int i = 0; i < num_players(); ++i) {
    const size_t m = size_t(num_strategies(i));
    potential_row(i, x, flat.subspan(offset, m));
    offset += m;
  }
}

void PotentialGame::utility_rows(Profile& x, std::span<double> flat) const {
  potential_rows(x, flat);
  for (double& v : flat) v = -v;
}

bool is_dominant_strategy(const Game& game, int player, Strategy s) {
  const ProfileSpace& sp = game.space();
  Profile x(size_t(sp.num_players()));
  std::vector<double> row(size_t(sp.num_strategies(player)));
  // Enumerate all profiles; for each opponent sub-profile compare `s`
  // against every alternative of `player` via one row query.
  for (size_t idx = 0; idx < sp.num_profiles(); ++idx) {
    if (sp.strategy_of(idx, player) != s) continue;  // canonicalize x_i = s
    sp.decode_into(idx, x);
    game.utility_row(player, x, row);
    for (Strategy alt = 0; alt < sp.num_strategies(player); ++alt) {
      if (row[size_t(alt)] > row[size_t(s)]) return false;
    }
  }
  return true;
}

bool is_dominant_profile(const Game& game, const Profile& profile) {
  for (int i = 0; i < game.num_players(); ++i) {
    if (!is_dominant_strategy(game, i, profile[size_t(i)])) return false;
  }
  return true;
}

bool is_pure_nash(const Game& game, const Profile& x) {
  Profile y = x;
  std::vector<double> row;
  for (int i = 0; i < game.num_players(); ++i) {
    row.resize(size_t(game.num_strategies(i)));
    game.utility_row(i, y, row);
    const double u = row[size_t(x[size_t(i)])];
    for (Strategy s = 0; s < game.num_strategies(i); ++s) {
      if (row[size_t(s)] > u) return false;
    }
  }
  return true;
}

}  // namespace logitdyn
