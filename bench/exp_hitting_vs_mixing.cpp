// Extension experiment — hitting times vs mixing times.
//
// The related work the paper positions itself against (Asadpour–Saberi,
// Montanari–Saberi) measures convergence by the *hitting time of one
// profile* (the highest-potential equilibrium); the paper argues mixing
// time is the right notion. This experiment quantifies the gap on the
// clique coordination game (exact, lumped): from the risk-dominated well
// the hitting time of the dominant equilibrium tracks the one-way barrier
// Phi_max - Phi(1), while the mixing time must also equilibrate the
// reverse direction and pays the same exponential — but from the *mixed*
// start the hitting time is exponentially smaller than t_mix, showing the
// two notions genuinely differ.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "analysis/hitting.hpp"
#include "bench_common.hpp"
#include "core/lumped.hpp"

using namespace logitdyn;

int main() {
  bench::print_header(
      "EXT: hitting time (Montanari-Saberi's metric) vs mixing time",
      "clique coordination, exact lumped chains: E[hit dominant eq.] vs "
      "t_mix(1/4)");

  {
    bench::print_section(
        "n = 16, delta0 = 1.5/(n-1), delta1 = 1.0/(n-1): beta sweep");
    const int n = 16;
    const double d0 = 1.5 / double(n - 1), d1 = 1.0 / double(n - 1);
    const std::vector<double> wphi = clique_weight_potential(n, d0, d1);
    Table table({"beta", "E[hit 0 | start 1] (wrong well)",
                 "E[hit 0 | start k*]", "t_mix(1/4)"});
    for (double beta : {2.0, 4.0, 6.0, 8.0}) {
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const int k_star = clique_barrier_weight(n, d0, d1);
      const double from_ones = birth_death_hitting_time(bd, n, 0);
      const double from_ridge = birth_death_hitting_time(bd, k_star, 0);
      const MixingResult mix = bench::exact_tmix(bd);
      table.row()
          .cell(beta, 1)
          .cell_sci(from_ones)
          .cell_sci(from_ridge)
          .cell(bench::tmix_cell(mix));
    }
    table.print(std::cout);
    std::cout << "both hitting the dominant equilibrium from the wrong well "
                 "and t_mix are barrier-crossing times of the same order "
                 "(ridge starts save only a constant factor): in this "
                 "direction the two notions agree.\n";
  }

  {
    bench::print_section(
        "asymmetry of the two wells (beta = 6, n = 24): deep -> shallow vs "
        "shallow -> deep");
    const int n = 24;
    Table table({"delta1/delta0", "E[1 -> 0] (shallow to deep)",
                 "E[0 -> n] (deep to shallow)"});
    const double d0 = 1.0 / double(n - 1);
    for (double ratio : {0.5, 0.75, 1.0}) {
      const double d1 = ratio * d0;
      const BirthDeathChain bd = BirthDeathChain::weight_chain(
          n, 6.0, clique_weight_potential(n, d0, d1));
      table.row()
          .cell(ratio, 2)
          .cell_sci(birth_death_hitting_time(bd, n, 0))
          .cell_sci(birth_death_hitting_time(bd, 0, n));
    }
    table.print(std::cout);
    std::cout << "here the notions split: E[0 -> n] exceeds t_mix by up to "
                 "e^{beta*(depth difference)} — a chain can be fully mixed "
                 "long before it ever visits the minority equilibrium "
                 "(pi(1) is exponentially small), which is why the paper "
                 "tracks distributions, not single profiles. At delta0 = "
                 "delta1 the wells equalize: Theorem 5.5's worst case.\n";
  }
  return 0;
}
