// Thin shim: this experiment lives in the registry
// (src/scenario/experiments/hitting_vs_mixing.cpp). Run it with default scenario
// and options — `logitdyn_lab run hitting_vs_mixing` is the full-featured front
// end (scenario overrides, beta grids, seeds, JSON reports).
#include "scenario/registry.hpp"

int main() { return logitdyn::scenario::run_registered_main("hitting_vs_mixing"); }
