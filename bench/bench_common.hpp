// Shared helpers for the experiment binaries.
//
// Every experiment prints: a header naming the paper result it reproduces,
// one aligned table of (parameter, measured, paper-bound) rows, and — where
// the paper predicts an exponential rate — a least-squares rate fit with
// the predicted rate next to it.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/mixing.hpp"
#include "core/chain.hpp"
#include "core/lumped.hpp"
#include "support/fit.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace logitdyn::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n==================================================\n"
            << experiment << "\n"
            << claim << "\n"
            << "==================================================\n";
}

inline void print_section(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
}

/// Exact worst-case t_mix(1/4) of a dense chain; returns 0 on budget blowout
/// (callers print ">cap" in that case).
inline MixingResult exact_tmix(const DenseMatrix& p,
                               const std::vector<double>& pi,
                               uint64_t max_time = uint64_t(1) << 36) {
  return mixing_time_doubling(p, pi, 0.25, max_time);
}

/// Exact worst-case t_mix of a LogitChain (builds the dense matrix).
inline MixingResult exact_tmix(const LogitChain& chain,
                               uint64_t max_time = uint64_t(1) << 36) {
  return exact_tmix(chain.dense_transition(), chain.stationary(), max_time);
}

/// Exact worst-case t_mix of a lumped birth-death chain.
inline MixingResult exact_tmix(const BirthDeathChain& bd,
                               uint64_t max_time = uint64_t(1) << 44) {
  return mixing_time_doubling(bd.transition(), bd.stationary(), 0.25,
                              max_time);
}

/// Fit log(t_mix) = a + rate * beta and report (rate, r^2).
inline LineFit rate_fit(const std::vector<double>& betas,
                        const std::vector<double>& times) {
  return fit_exponential_rate(betas, times);
}

inline std::string tmix_cell(const MixingResult& r) {
  if (!r.converged) return "> budget";
  return std::to_string(r.time);
}

}  // namespace logitdyn::bench
