// Thin compatibility header. The shared experiment helpers (the three
// exact_tmix overloads, tmix_cell, rate_fit) moved into the harness at
// src/scenario/harness.hpp, and header/section printing is Report's job
// (src/scenario/report.hpp); this header re-exports the helpers under the
// historical logitdyn::bench names for any out-of-tree experiment code.
#pragma once

#include <iostream>
#include <string>

#include "scenario/harness.hpp"
#include "support/table.hpp"

namespace logitdyn::bench {

using harness::exact_tmix;
using harness::rate_fit;
using harness::tmix_cell;

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n==================================================\n"
            << experiment << "\n"
            << claim << "\n"
            << "==================================================\n";
}

inline void print_section(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
}

}  // namespace logitdyn::bench
