// Thin shim: this experiment lives in the registry
// (src/scenario/experiments/t51_cutwidth.cpp). Run it with default scenario
// and options — `logitdyn_lab run t51_cutwidth` is the full-featured front
// end (scenario overrides, beta grids, seeds, JSON reports).
#include "scenario/registry.hpp"

int main() { return logitdyn::scenario::run_registered_main("t51_cutwidth"); }
