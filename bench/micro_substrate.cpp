// E12 — google-benchmark micro-benchmarks of the substrate kernels that
// every experiment above leans on: dense multiply, CSR products, the
// symmetric eigensolver, chain construction, Gibbs evaluation, and raw
// simulation throughput.
#include <benchmark/benchmark.h>

#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "core/simulator.hpp"
#include "games/graphical_coordination.hpp"
#include "games/plateau.hpp"
#include "graph/builders.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "rng/alias_table.hpp"
#include "rng/rng.hpp"

namespace {

using namespace logitdyn;

DenseMatrix random_matrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n, n);
  for (double& v : m.data()) v = rng.uniform();
  return m;
}

void BM_DenseMatmul(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  const DenseMatrix a = random_matrix(n, 1);
  const DenseMatrix b = random_matrix(n, 2);
  DenseMatrix out(n, n);
  for (auto _ : state) {
    matmul(a, b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n * n * n));
}
BENCHMARK(BM_DenseMatmul)->Arg(64)->Arg(128)->Arg(256);

void BM_SymmetricEigen(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  DenseMatrix a = random_matrix(n, 3);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) a(i, j) = a(j, i);
  }
  for (auto _ : state) {
    SymmetricEigen eig = symmetric_eigen(a);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(64)->Arg(128)->Arg(256);

void BM_CsrLeftMultiply(benchmark::State& state) {
  // The logit chain of a ring coordination game: a realistic sparsity
  // pattern (n+1 nonzeros per row).
  const int n = int(state.range(0));
  GraphicalCoordinationGame game(make_ring(uint32_t(n)),
                                 CoordinationPayoffs::from_deltas(1.0, 1.0));
  LogitChain chain(game, 1.0);
  const CsrMatrix p = chain.csr_transition();
  std::vector<double> x(p.rows(), 1.0 / double(p.rows()));
  std::vector<double> y(p.rows());
  for (auto _ : state) {
    p.left_multiply(x, y);
    x.swap(y);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(p.nnz()));
}
BENCHMARK(BM_CsrLeftMultiply)->Arg(8)->Arg(12);

void BM_DenseTransitionBuild(benchmark::State& state) {
  const int n = int(state.range(0));
  PlateauGame game(n, double(n) / 2.0, 1.0);
  LogitChain chain(game, 1.0);
  for (auto _ : state) {
    DenseMatrix p = chain.dense_transition();
    benchmark::DoNotOptimize(p.data().data());
  }
}
BENCHMARK(BM_DenseTransitionBuild)->Arg(8)->Arg(10);

void BM_GibbsMeasure(benchmark::State& state) {
  const int n = int(state.range(0));
  PlateauGame game(n, double(n) / 2.0, 1.0);
  for (auto _ : state) {
    GibbsMeasure g = gibbs_measure(game, 1.5);
    benchmark::DoNotOptimize(g.probabilities.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) << n);
}
BENCHMARK(BM_GibbsMeasure)->Arg(10)->Arg(14);

void BM_SimulationSteps(benchmark::State& state) {
  // Raw logit-update throughput on a 48-player ring.
  GraphicalCoordinationGame game(make_ring(48),
                                 CoordinationPayoffs::from_deltas(1.0, 1.0));
  LogitChain chain(game, 1.0);
  Rng rng(5);
  Profile x(48, 0);
  for (auto _ : state) {
    chain.step(x, rng);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_SimulationSteps);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> weights(64);
  for (double& w : weights) w = rng.uniform() + 0.01;
  const AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.sample(rng));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_AliasSample);

}  // namespace

BENCHMARK_MAIN();
