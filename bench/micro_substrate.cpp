// E12 — google-benchmark micro-benchmarks of the substrate kernels that
// every experiment above leans on: dense multiply, CSR products, the
// symmetric eigensolver, chain construction, Gibbs evaluation, and raw
// simulation throughput — plus two JSON smoke emitters that run before
// the google-benchmark suite: the oracle-vs-naive comparison of the
// local-move utility oracle (BENCH_oracle.json, DESIGN.md §6) and the
// sharded-vs-sequential TransitionBuilder + grouped-vs-naive
// ReplicaEnsemble comparison (BENCH_chain_build.json, DESIGN.md §8).
#include <benchmark/benchmark.h>
#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/mixing.hpp"
#include "analysis/spectral.hpp"
#include "analysis/tv.hpp"
#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "core/logit_operator.hpp"
#include "core/simulator.hpp"
#include "core/transition_builder.hpp"
#include "linalg/chebyshev.hpp"
#include "linalg/lanczos.hpp"
#include "local/replica_fleet.hpp"
#include "parallel/thread_pool.hpp"
#include "support/isa.hpp"
#include "games/congestion.hpp"
#include "games/graphical_coordination.hpp"
#include "games/ising.hpp"
#include "games/naive_row_game.hpp"
#include "games/plateau.hpp"
#include "graph/builders.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "rng/alias_table.hpp"
#include "rng/rng.hpp"
#include "scenario/report.hpp"
#include "scenario/scenario.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/timer.hpp"

namespace {

using namespace logitdyn;

// Congestion workload for the oracle comparison: `n` players, two
// route-like strategies each (size-8 subsets of 16 shared resources,
// shifted per player). Two strategies keep |S| = 2^n small enough for the
// dense build while the big overlapping subsets make each naive `utility`
// call — a full O(n * 8) load rebuild — expensive, which is exactly the
// congestion-game shape the oracle is for.
CongestionGame make_congestion_bench(int n, int r = 16, int route_len = 8) {
  // The "routes" variant of the congestion family in the scenario
  // registry (src/scenario/scenario.cpp) builds this same workload
  // declaratively; construct it through the registry so the bench and
  // the experiment harness can never drift apart.
  scenario::ScenarioSpec spec;
  spec.family = "congestion";
  spec.n = n;
  spec.params.set("variant", "routes")
      .set("resources", r)
      .set("route_len", route_len);
  std::unique_ptr<Game> game =
      scenario::GameRegistry::instance().make_game(spec);
  return std::move(dynamic_cast<CongestionGame&>(*game));
}

/// Shared writer for every BENCH_*.json artifact: one schema (name,
/// config, environment, measurements) through scenario::make_document, so
/// the perf-trajectory tooling can diff the files across PRs; refuses to
/// write a document that fails its own schema.
void write_bench_document(const std::string& path, const std::string& name,
                          Json config, Json measurements) {
  const Json doc = scenario::make_document("bench", name, std::move(config),
                                           std::move(measurements));
  std::string error;
  if (!scenario::validate_report_json(doc, &error)) {
    throw Error("BENCH JSON fails its own schema: " + error);
  }
  // Atomic (DESIGN.md §14): perf_diff.py never sees a truncated artifact.
  write_file_atomic(path, doc.dump(2) + "\n");
}

double time_best_of(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    body();
    best = std::min(best, timer.millis());
  }
  return best;
}

struct OracleRow {
  std::string workload, game;
  size_t states;
  double naive_ms, oracle_ms;
};

void append_dense_transition_rows(const Game& game, std::vector<OracleRow>& rows) {
  const NaiveRowGame naive(game);
  const LogitChain fast(game, 1.0);
  const LogitChain slow(naive, 1.0);
  OracleRow row{"dense_transition", game.name(),
                game.space().num_profiles(), 0.0, 0.0};
  row.naive_ms = time_best_of(5, [&] {
    DenseMatrix p = slow.dense_transition();
    benchmark::DoNotOptimize(p.data().data());
  });
  row.oracle_ms = time_best_of(5, [&] {
    DenseMatrix p = fast.dense_transition();
    benchmark::DoNotOptimize(p.data().data());
  });
  rows.push_back(row);
}

void append_simulation_rows(const Game& game, int64_t steps,
                            std::vector<OracleRow>& rows) {
  const NaiveRowGame naive(game);
  const LogitChain fast(game, 1.0);
  const LogitChain slow(naive, 1.0);
  OracleRow row{"simulate_steps", game.name(), game.space().num_profiles(),
                0.0, 0.0};
  row.naive_ms = time_best_of(3, [&] {
    Rng rng(11);
    Profile x(size_t(game.num_players()), 0);
    simulate(slow, x, steps, rng);
    benchmark::DoNotOptimize(x.data());
  });
  row.oracle_ms = time_best_of(3, [&] {
    Rng rng(11);
    Profile x(size_t(game.num_players()), 0);
    simulate(fast, x, steps, rng);
    benchmark::DoNotOptimize(x.data());
  });
  rows.push_back(row);
}

/// Emit BENCH_oracle.json: wall-clock oracle-vs-naive rows covering
/// dense-transition construction and trajectory simulation on congestion,
/// Ising and graphical-coordination workloads at several sizes.
void write_bench_oracle_json(const std::string& path) {
  std::vector<OracleRow> rows;

  for (int n : {10, 11}) {
    const CongestionGame game = make_congestion_bench(n);
    append_dense_transition_rows(game, rows);
  }
  {
    // Heavier routes (length-12 subsets of 24 resources): the shape where
    // per-candidate load rebuilds dominate and the oracle matters most.
    const CongestionGame game = make_congestion_bench(10, 24, 12);
    append_dense_transition_rows(game, rows);
  }
  for (int n : {10, 11}) {
    const IsingGame game(make_clique(uint32_t(n)), 0.8);
    append_dense_transition_rows(game, rows);
  }
  for (int n : {10, 11}) {
    const GraphicalCoordinationGame game(
        make_clique(uint32_t(n)), CoordinationPayoffs::from_deltas(2.0, 1.0));
    append_dense_transition_rows(game, rows);
  }

  // Simulation workloads sit near the 2^62 profile-encoding cap: 20
  // players x 8 links, and ~50-spin graphs.
  {
    const CongestionGame links =
        make_parallel_links_game(20, std::vector<double>(8, 1.0),
                                 std::vector<double>(8, 0.5));
    append_simulation_rows(links, 100000, rows);
  }
  {
    const IsingGame ising(make_torus(7, 7), 0.6);
    append_simulation_rows(ising, 100000, rows);
  }
  {
    Rng rng(3);
    const GraphicalCoordinationGame coord(
        make_random_regular(56, 4, rng),
        CoordinationPayoffs::from_deltas(2.0, 1.0));
    append_simulation_rows(coord, 100000, rows);
  }

  Json config = Json::object();
  config.set("description",
             "local-move utility oracle (utility_row / utility_rows) vs "
             "per-strategy virtual utility calls");
  config.set("note",
             "rows whose dense matrix exceeds the cache (n=11: 33MB) are "
             "dominated by matrix memory traffic common to both paths, "
             "which floors the ratio; compute-bound rows show the oracle's "
             "true gain");
  config.set("unit", "ms");
  Json results = Json::array();
  for (const OracleRow& row : rows) {
    Json r = Json::object();
    r.set("workload", row.workload);
    r.set("game", row.game);
    r.set("states", row.states);
    r.set("naive_ms", row.naive_ms);
    r.set("oracle_ms", row.oracle_ms);
    r.set("speedup", row.naive_ms / row.oracle_ms);
    results.push_back(std::move(r));
  }
  Json measurements = Json::object();
  measurements.set("results", std::move(results));
  write_bench_document(path, "oracle_vs_naive", std::move(config),
                       std::move(measurements));
  std::cout << "wrote " << path << " (" << rows.size() << " rows)\n";
  for (const OracleRow& row : rows) {
    std::cout << "  " << row.workload << " " << row.game << ": naive "
              << row.naive_ms << " ms, oracle " << row.oracle_ms
              << " ms, speedup " << row.naive_ms / row.oracle_ms << "x\n";
  }
}

bool csr_bit_identical(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.rows() != b.rows() || a.nnz() != b.nnz()) return false;
  for (size_t r = 0; r <= a.rows(); ++r) {
    if (a.row_offsets()[r] != b.row_offsets()[r]) return false;
  }
  for (size_t k = 0; k < a.nnz(); ++k) {
    if (a.col_indices()[k] != b.col_indices()[k]) return false;
    if (a.values()[k] != b.values()[k]) return false;
  }
  return true;
}

/// Emit BENCH_chain_build.json: single-thread vs sharded dense+CSR chain
/// construction on the 10-player congestion instance (bit-identity
/// verified), and grouped ReplicaEnsemble stepping vs the naive
/// per-replica loop on a metastable coordination workload. On a 1-core
/// container the sharded build degenerates to the sequential one (the
/// JSON records the thread count); multi-core CI runners show the real
/// speedup.
void write_bench_chain_build_json(const std::string& path) {
  const size_t threads =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  ThreadPool single(1);
  ThreadPool& sharded = ThreadPool::global();

  const CongestionGame game = make_congestion_bench(10);  // 1024 states
  const TransitionBuilder builder(game, 1.0, UpdateKind::kAsynchronous);

  const double dense_seq_ms = time_best_of(5, [&] {
    DenseMatrix p = builder.dense(single);
    benchmark::DoNotOptimize(p.data().data());
  });
  const double dense_par_ms = time_best_of(5, [&] {
    DenseMatrix p = builder.dense(sharded);
    benchmark::DoNotOptimize(p.data().data());
  });
  const bool dense_identical =
      builder.dense(single).max_abs_diff(builder.dense(sharded)) == 0.0;

  const double csr_seq_ms = time_best_of(5, [&] {
    CsrMatrix p = builder.csr(single);
    benchmark::DoNotOptimize(p.values().data());
  });
  const double csr_par_ms = time_best_of(5, [&] {
    CsrMatrix p = builder.csr(sharded);
    benchmark::DoNotOptimize(p.values().data());
  });
  const bool csr_identical =
      csr_bit_identical(builder.csr(single), builder.csr(sharded));

  // Grouped replica stepping on the same congestion instance: large beta
  // pins the ensemble to a handful of equilibria, so one batched oracle
  // evaluation per distinct state serves hundreds of replicas — and the
  // congestion oracle (full load rebuild) is exactly the expensive kind
  // grouping amortizes.
  const LogitChain chain(game, 6.0);
  const Profile start(10, 0);
  const int replicas = 512;
  const int64_t steps = 500;
  const uint64_t seed = 7;
  const ProfileSpace& sp = game.space();
  const double naive_ms = time_best_of(3, [&] {
    std::vector<size_t> finals(static_cast<size_t>(replicas));
    std::vector<double> sigma(chain.scratch_size());
    for (int r = 0; r < replicas; ++r) {
      Rng rng = Rng::for_replica(seed, uint64_t(r));
      Profile x = start;
      for (int64_t t = 0; t < steps; ++t) chain.step(x, rng, sigma);
      finals[size_t(r)] = sp.index(x);
    }
    benchmark::DoNotOptimize(finals.data());
  });
  size_t distinct = 0;
  const double grouped_ms = time_best_of(3, [&] {
    ReplicaEnsemble ensemble(chain, start, replicas, seed);
    ensemble.run(steps);
    distinct = ensemble.last_distinct_states();
    benchmark::DoNotOptimize(ensemble.states().data());
  });
  ReplicaEnsemble check(chain, start, replicas, seed);
  check.run(steps);
  // Compare against the library's own per-replica reference, not a hand
  // copy of it, so this gate tracks any future change to the simulator's
  // draw order or replica seeding.
  const bool finals_identical =
      check.states() ==
      batch_final_states(chain, start, steps, replicas, seed);

  Json config = Json::object();
  config.set("description",
             "sharded TransitionBuilder vs single-thread build "
             "(bit-identical), and grouped ReplicaEnsemble stepping vs the "
             "naive per-replica loop");
  config.set("threads", threads);
  config.set("unit", "ms");
  Json results = Json::array();
  {
    Json r = Json::object();
    r.set("workload", "dense_build");
    r.set("game", game.name());
    r.set("states", game.space().num_profiles());
    r.set("seq_ms", dense_seq_ms);
    r.set("sharded_ms", dense_par_ms);
    r.set("speedup", dense_seq_ms / dense_par_ms);
    r.set("bit_identical", dense_identical);
    results.push_back(std::move(r));
  }
  {
    Json r = Json::object();
    r.set("workload", "csr_build");
    r.set("game", game.name());
    r.set("states", game.space().num_profiles());
    r.set("seq_ms", csr_seq_ms);
    r.set("sharded_ms", csr_par_ms);
    r.set("speedup", csr_seq_ms / csr_par_ms);
    r.set("bit_identical", csr_identical);
    results.push_back(std::move(r));
  }
  {
    Json r = Json::object();
    r.set("workload", "replica_stepping");
    r.set("game", game.name());
    r.set("replicas", replicas);
    r.set("steps", steps);
    r.set("naive_ms", naive_ms);
    r.set("grouped_ms", grouped_ms);
    r.set("speedup", naive_ms / grouped_ms);
    r.set("distinct_states_last_step", distinct);
    r.set("identical_finals", finals_identical);
    results.push_back(std::move(r));
  }
  Json measurements = Json::object();
  measurements.set("results", std::move(results));
  write_bench_document(path, "chain_build_and_ensemble", std::move(config),
                       std::move(measurements));
  std::cout << "wrote " << path << "\n"
            << "  dense_build: seq " << dense_seq_ms << " ms, sharded "
            << dense_par_ms << " ms (" << threads << " threads), speedup "
            << dense_seq_ms / dense_par_ms
            << "x, bit_identical=" << dense_identical << "\n"
            << "  csr_build:   seq " << csr_seq_ms << " ms, sharded "
            << csr_par_ms << " ms, speedup " << csr_seq_ms / csr_par_ms
            << "x, bit_identical=" << csr_identical << "\n"
            << "  replica_stepping: naive " << naive_ms << " ms, grouped "
            << grouped_ms << " ms, speedup " << naive_ms / grouped_ms
            << "x, distinct=" << distinct
            << ", identical_finals=" << finals_identical << "\n";
}

/// Emit BENCH_spectral.json: the dense symmetrize-and-decompose spectrum
/// vs Lanczos-on-LogitOperator (DESIGN.md §9) on n-player congestion
/// instances (2^n states). Dense runs at the cross-checkable sizes
/// (n <= 11 — below the 2^12 cutover, where the dense path is in
/// contract) and the gap-agreement flag there gates CI; from n = 12 up
/// only the operator path runs — the n = 20 row is a 2^20-state chain
/// whose transition matrix (8 TB dense) is never materialized. Also
/// records the max row-sum defect the dense doubling ladder corrected,
/// as a per-PR numerical-health signal.
void write_bench_spectral_json(const std::string& path) {
  struct SpectralRow {
    int n;
    size_t states;
    double beta = 0.0;
    double dense_ms = 0.0;    // 0 = dense not run at this size
    double lanczos_ms = 0.0;
    double dense_lstar = 0.0;
    double lz_lstar = 0.0;
    size_t iterations = 0;
    bool converged = false;
    double diff = 0.0;        // |lambda* dense - lambda* lanczos|
    bool comparable = false;  // dense ran at this size
  };
  std::vector<SpectralRow> rows;
  for (int n : {10, 11, 12, 16, 20}) {
    SpectralRow row;
    row.n = n;
    const CongestionGame game = make_congestion_bench(n);
    row.states = game.space().num_profiles();
    // The Rosenthal potential's spread grows with n; cap beta so the
    // smallest Gibbs weight stays representable (exp(-beta * spread)
    // must not underflow to an exact zero — the symmetrized operator
    // needs pi > 0 everywhere).
    const std::vector<double> phi = potential_table(game);
    const auto [phi_min, phi_max] =
        std::minmax_element(phi.begin(), phi.end());
    const double spread = *phi_max - *phi_min;
    row.beta = std::min(1.0, 400.0 / std::max(1.0, spread));
    const GibbsMeasure gibbs = gibbs_from_potentials(phi, row.beta);

    const LogitOperator op(game, row.beta, UpdateKind::kAsynchronous);
    LanczosOptions opts;
    // Tight tolerance where the dense path cross-checks; the large sizes
    // only need the gap to bench precision.
    opts.tol = n <= 12 ? 1e-10 : 1e-8;
    opts.max_iterations = n <= 12 ? 300 : 200;
    LanczosSpectrum lz;
    row.lanczos_ms = time_best_of(n <= 12 ? 3 : 1, [&] {
      lz = lanczos_spectrum(op, gibbs.probabilities, opts);
      benchmark::DoNotOptimize(lz.lambda2);
    });
    row.lz_lstar = lz.lambda_star();
    row.iterations = lz.iterations;
    row.converged = lz.converged;

    // Dense cross-check at the cross-checkable sizes: n = 12 is 4096
    // states — exactly the cutover, where the engine's contract is
    // already operator-only (and the dense O(N^3) decomposition alone
    // costs ~10 min), so the certified comparison runs at n <= 11.
    if (n <= 11) {
      const LogitChain chain(game, row.beta);
      ChainSpectrum dense;
      row.dense_ms = time_best_of(n <= 10 ? 2 : 1, [&] {
        dense = chain_spectrum(chain.dense_transition(), gibbs.probabilities);
        benchmark::DoNotOptimize(dense.eigenvalues.data());
      });
      row.dense_lstar = dense.lambda_star();
      row.diff = std::abs(row.dense_lstar - row.lz_lstar);
      row.comparable = true;
    }
    rows.push_back(row);
  }

  // Numerical-health probe: the row-sum defect the doubling ladder's
  // renormalization corrected on a metastable 1024-state chain.
  const PlateauGame health_game(10, 5.0, 1.0);
  const LogitChain health_chain(health_game, 1.5);
  const MixingResult health = mixing_time_doubling(
      health_chain.dense_transition(), health_chain.stationary(), 0.25);

  Json config = Json::object();
  config.set("description",
             "dense symmetrized eigendecomposition vs Lanczos on the "
             "matrix-free LogitOperator (lambda*, hence spectral gap and "
             "t_rel); gap_agrees gates CI at the cross-checkable sizes");
  config.set("unit", "ms");
  Json results = Json::array();
  for (const SpectralRow& row : rows) {
    Json r = Json::object();
    r.set("n", row.n);
    r.set("states", row.states);
    r.set("beta", row.beta);
    r.set("lanczos_ms", row.lanczos_ms);
    r.set("lanczos_lambda_star", row.lz_lstar);
    r.set("iterations", row.iterations);
    r.set("converged", row.converged);
    if (row.comparable) {
      r.set("dense_ms", row.dense_ms);
      r.set("dense_lambda_star", row.dense_lstar);
      r.set("speedup", row.dense_ms / row.lanczos_ms);
      r.set("lambda_star_diff", row.diff);
      r.set("gap_agrees", row.diff <= 1e-6);
    }
    results.push_back(std::move(r));
  }
  Json measurements = Json::object();
  measurements.set("results", std::move(results));
  {
    Json health_json = Json::object();
    health_json.set("workload", "doubling_row_defect");
    health_json.set("states", health_game.space().num_profiles());
    health_json.set("t_mix", health.time);
    health_json.set("max_row_defect", health.max_row_defect);
    measurements.set("mixing_health", std::move(health_json));
  }
  write_bench_document(path, "spectral_dense_vs_lanczos", std::move(config),
                       std::move(measurements));
  std::cout << "wrote " << path << "\n";
  for (const SpectralRow& row : rows) {
    std::cout << "  n=" << row.n << " (" << row.states
              << " states, beta=" << row.beta << "): lanczos "
              << row.lanczos_ms << " ms (" << row.iterations
              << " iters, converged=" << row.converged << ")";
    if (row.comparable) {
      std::cout << ", dense " << row.dense_ms << " ms, speedup "
                << row.dense_ms / row.lanczos_ms << "x, |d lambda*| "
                << row.diff;
    }
    std::cout << "\n";
  }
  std::cout << "  doubling max_row_defect: " << health.max_row_defect
            << " (t_mix " << health.time << ")\n";
}

/// Emit BENCH_apply.json: the fast-apply engine (DESIGN.md §11) vs the
/// retained PR-4 scalar path on operator-scale workloads — batched
/// apply_many, multi-start TV evolution, and Lanczos spectral runs at
/// 2^16 states (where the acceptance target is >= 2x), plus the
/// one-sweep CSR batched apply vs per-vector applies and the certified
/// worst-start envelope's compaction accounting. `agrees` keys gate CI:
/// the vectorized kernel must match the scalar cross-check to 1e-6 on
/// every tracked quantity (it actually agrees to ~1e-12).
void write_bench_apply_json(const std::string& path) {
  Json results = Json::array();

  // 2^16-state Ising torus: the oracle is cheap (local fields), so the
  // softmax inner loop dominates the scalar path — the workload the
  // vectorized kernel is for.
  const IsingGame ising(make_torus(4, 4), 0.5);
  const GibbsMeasure ising_gibbs = gibbs_measure(ising, 1.0);
  const size_t n_ising = ising.space().num_profiles();
  const LogitOperator vec_op(ising, 1.0, UpdateKind::kAsynchronous);
  const LogitOperator scalar_op(ising, 1.0, UpdateKind::kAsynchronous,
                                nullptr, ApplyMode::kScalarReference);
  {
    // Batched apply: 8 vectors through one sweep, both modes.
    const size_t count = 8;
    std::vector<double> xs(count * n_ising), yv(count * n_ising),
        ys(count * n_ising);
    Rng rng(5);
    for (double& v : xs) v = rng.uniform();
    const double vec_ms = time_best_of(5, [&] {
      vec_op.apply_many(xs, yv, count);
      benchmark::DoNotOptimize(yv.data());
    });
    const double scalar_ms = time_best_of(3, [&] {
      scalar_op.apply_many(xs, ys, count);
      benchmark::DoNotOptimize(ys.data());
    });
    double max_diff = 0.0;
    for (size_t i = 0; i < count * n_ising; ++i) {
      max_diff = std::max(max_diff, std::abs(yv[i] - ys[i]));
    }
    Json r = Json::object();
    r.set("workload", "async_apply_many_x8");
    r.set("game", ising.name());
    r.set("states", n_ising);
    r.set("scalar_ms", scalar_ms);
    r.set("vectorized_ms", vec_ms);
    r.set("speedup", scalar_ms / vec_ms);
    r.set("max_abs_diff", max_diff);
    r.set("agrees", max_diff <= 1e-6);
    results.push_back(std::move(r));
    std::cout << "  async_apply_many_x8: scalar " << scalar_ms
              << " ms, vectorized " << vec_ms << " ms, speedup "
              << scalar_ms / vec_ms << "x, |diff| " << max_diff << "\n";
  }
  {
    // Multi-start TV evolution (the mixing workload): 8 unit starts, 24
    // steps, both modes.
    const uint64_t steps = 24;
    const size_t count = 8;
    std::vector<double> cur(count * n_ising, 0.0), nxt(count * n_ising);
    auto evolve = [&](const LogitOperator& op) {
      std::fill(cur.begin(), cur.end(), 0.0);
      for (size_t b = 0; b < count; ++b) {
        cur[b * n_ising + b * (n_ising / count)] = 1.0;
      }
      for (uint64_t t = 0; t < steps; ++t) {
        op.apply_many(cur, nxt, count);
        cur.swap(nxt);
      }
    };
    const double vec_ms = time_best_of(3, [&] {
      evolve(vec_op);
      benchmark::DoNotOptimize(cur.data());
    });
    std::vector<double> vec_final = cur;
    const double scalar_ms = time_best_of(2, [&] {
      evolve(scalar_op);
      benchmark::DoNotOptimize(cur.data());
    });
    double tv_diff = 0.0;
    for (size_t b = 0; b < count; ++b) {
      const std::span<const double> pi = ising_gibbs.probabilities;
      const double tv_v = total_variation(
          std::span<const double>(vec_final.data() + b * n_ising, n_ising),
          pi);
      const double tv_s = total_variation(
          std::span<const double>(cur.data() + b * n_ising, n_ising), pi);
      tv_diff = std::max(tv_diff, std::abs(tv_v - tv_s));
    }
    Json r = Json::object();
    r.set("workload", "tv_evolution_8starts_24steps");
    r.set("game", ising.name());
    r.set("states", n_ising);
    r.set("scalar_ms", scalar_ms);
    r.set("vectorized_ms", vec_ms);
    r.set("speedup", scalar_ms / vec_ms);
    r.set("max_tv_diff", tv_diff);
    r.set("agrees", tv_diff <= 1e-6);
    results.push_back(std::move(r));
    std::cout << "  tv_evolution_8starts_24steps: scalar " << scalar_ms
              << " ms, vectorized " << vec_ms << " ms, speedup "
              << scalar_ms / vec_ms << "x, |tv diff| " << tv_diff << "\n";
  }
  {
    // Lanczos spectral run at 2^16 (the spectral workload): lambda* from
    // both modes must agree to 1e-6.
    LanczosOptions opts;
    opts.tol = 1e-8;
    opts.max_iterations = 120;
    LanczosSpectrum vec_s, scalar_s;
    const double vec_ms = time_best_of(2, [&] {
      vec_s = lanczos_spectrum(vec_op, ising_gibbs.probabilities, opts);
      benchmark::DoNotOptimize(vec_s.lambda2);
    });
    const double scalar_ms = time_best_of(1, [&] {
      scalar_s = lanczos_spectrum(scalar_op, ising_gibbs.probabilities, opts);
      benchmark::DoNotOptimize(scalar_s.lambda2);
    });
    const double diff =
        std::abs(vec_s.lambda_star() - scalar_s.lambda_star());
    Json r = Json::object();
    r.set("workload", "lanczos_spectrum");
    r.set("game", ising.name());
    r.set("states", n_ising);
    r.set("scalar_ms", scalar_ms);
    r.set("vectorized_ms", vec_ms);
    r.set("speedup", scalar_ms / vec_ms);
    r.set("iterations", vec_s.iterations);
    r.set("lambda_star_diff", diff);
    r.set("agrees", diff <= 1e-6);
    results.push_back(std::move(r));
    std::cout << "  lanczos_spectrum: scalar " << scalar_ms
              << " ms, vectorized " << vec_ms << " ms, speedup "
              << scalar_ms / vec_ms << "x (" << vec_s.iterations
              << " iters), |d lambda*| " << diff << "\n";
  }
  {
    // Single-start fused-TV evolution on a 2^18-state CSR chain (the
    // cached-transpose gather path): a pure trajectory key for the perf
    // diff — the batched one-sweep CSR variant was measured slower on
    // this sparsity and rejected (DESIGN.md §11), so the tracked number
    // is the per-vector kernel every CSR evolution actually runs.
    const GraphicalCoordinationGame ring(
        make_ring(18), CoordinationPayoffs::from_deltas(1.0, 0.5));
    const LogitChain chain(ring, 1.0);
    const CsrMatrix p =
        TransitionBuilder(ring, 1.0, UpdateKind::kAsynchronous).csr();
    const std::vector<double> pi = chain.stationary();
    MixingWorkspace ws;
    MixingResult mix;
    const double evolve_ms = time_best_of(3, [&] {
      mix = mixing_time_from_state(p, 0, pi, 1e-9, 64, ws);
      benchmark::DoNotOptimize(mix.distance);
    });
    Json r = Json::object();
    r.set("workload", "csr_fused_tv_evolution_64steps");
    r.set("game", ring.name());
    r.set("states", p.rows());
    r.set("evolve_ms", evolve_ms);
    r.set("final_tv", mix.distance);
    results.push_back(std::move(r));
    std::cout << "  csr_fused_tv_evolution_64steps: " << evolve_ms
              << " ms (2^18 states, final TV " << mix.distance << ")\n";
  }
  {
    // Certified worst-start envelope on a metastable 2^10 clique: the
    // new capability's wall time plus its compaction accounting.
    const GraphicalCoordinationGame clique(
        make_clique(10), CoordinationPayoffs::from_deltas(1.2 / 9, 0.8 / 9));
    const double beta = 2.0;
    const GibbsMeasure gibbs = gibbs_measure(clique, beta);
    const LogitOperator op(clique, beta, UpdateKind::kAsynchronous);
    WorstStartCertificate cert;
    const double cert_ms = time_best_of(3, [&] {
      cert = certify_worst_start(op, gibbs.probabilities, 0.25, 1u << 16);
      benchmark::DoNotOptimize(cert.worst.time);
    });
    Json r = Json::object();
    r.set("workload", "certified_worst_start");
    r.set("game", clique.name());
    r.set("states", clique.space().num_profiles());
    r.set("certify_ms", cert_ms);
    r.set("t_mix", cert.worst.time);
    r.set("converged", cert.worst.converged);
    r.set("vector_steps", cert.vector_steps);
    r.set("dense_steps", cert.dense_steps);
    r.set("compaction_x",
          double(cert.dense_steps) / double(std::max<uint64_t>(
                                         1, cert.vector_steps)));
    results.push_back(std::move(r));
    std::cout << "  certified_worst_start: " << cert_ms << " ms, t_mix "
              << cert.worst.time << ", compaction "
              << double(cert.dense_steps) /
                     double(std::max<uint64_t>(1, cert.vector_steps))
              << "x\n";
  }

  {
    // Filtered Chebyshev evolution vs exact stepwise on a 2^20-state
    // Ising torus at t = 10 * t_rel (DESIGN.md §12): the monomial filter
    // reaches P^t in O(sqrt(t log(1/eps))) applies, and the certified
    // truncation bound must cover the observed TV deviation — the
    // acceptance row for the filtered engine.
    const IsingGame big(make_torus(4, 5), 0.5);
    const double beta = 0.4;
    const GibbsMeasure gibbs = gibbs_measure(big, beta);
    const size_t n_big = big.space().num_profiles();
    const LogitOperator op(big, beta, UpdateKind::kAsynchronous);
    LanczosOptions lopts;
    lopts.tol = 1e-8;
    lopts.max_iterations = 200;
    const LanczosSpectrum spec =
        lanczos_spectrum(op, gibbs.probabilities, lopts);
    const SpectralInterval iv = deviation_interval(spec);
    const double t_rel = 1.0 / (1.0 - spec.lambda_star());
    const uint64_t t = uint64_t(std::ceil(10.0 * t_rel));

    const size_t count = 2;  // the two extreme delta starts
    std::vector<double> xs(count * n_big, 0.0);
    xs[0] = 1.0;
    xs[n_big + (n_big - 1)] = 1.0;
    std::vector<double> ys_step(count * n_big), ys_cheb(count * n_big),
        nxt(count * n_big);
    const double stepwise_ms = time_best_of(1, [&] {
      std::copy(xs.begin(), xs.end(), ys_step.begin());
      for (uint64_t s = 0; s < t; ++s) {
        op.apply_many(ys_step, nxt, count);
        ys_step.swap(nxt);
      }
      benchmark::DoNotOptimize(ys_step.data());
    });
    ChebyshevEvolver evolver(op, gibbs.probabilities, iv);
    ChebyshevEvolver::Result res;
    const double cheb_ms = time_best_of(2, [&] {
      res = evolver.evolve(xs, ys_cheb, count, t, 1e-8);
      benchmark::DoNotOptimize(ys_cheb.data());
    });
    double tv_diff = 0.0, defect_bound = 0.0;
    bool within_bound = true;
    for (size_t b = 0; b < count; ++b) {
      const double tv_s = total_variation(
          std::span<const double>(ys_step.data() + b * n_big, n_big),
          gibbs.probabilities);
      const double d = std::abs(res.tv[b] - tv_s);
      tv_diff = std::max(tv_diff, d);
      defect_bound = std::max(defect_bound, res.tv_defect_bound[b]);
      within_bound = within_bound && d <= res.tv_defect_bound[b] + 1e-9;
    }
    Json r = Json::object();
    r.set("workload", "chebyshev_vs_stepwise_10trel");
    r.set("game", big.name());
    r.set("states", n_big);
    r.set("t", t);
    r.set("t_rel", t_rel);
    r.set("degree", res.degree);
    r.set("stepwise_ms", stepwise_ms);
    r.set("chebyshev_ms", cheb_ms);
    r.set("speedup", stepwise_ms / cheb_ms);
    r.set("max_tv_diff", tv_diff);
    r.set("tv_defect_bound", defect_bound);
    r.set("within_bound", within_bound);
    results.push_back(std::move(r));
    std::cout << "  chebyshev_vs_stepwise_10trel: t=" << t << " (t_rel "
              << t_rel << "), degree " << res.degree << ", stepwise "
              << stepwise_ms << " ms, chebyshev " << cheb_ms
              << " ms, speedup " << stepwise_ms / cheb_ms << "x, |tv diff| "
              << tv_diff << " (bound " << defect_bound
              << ", within=" << within_bound << ")\n";
  }

  Json config = Json::object();
  config.set("description",
             "fast-apply engine vs the retained PR-4 scalar path: "
             "vectorized logit kernel (SoA softmax + fast_exp), one-sweep "
             "multi-vector applies, certified worst-start envelopes; plus "
             "the Chebyshev filter vs exact stepwise at t = 10 t_rel on "
             "2^20 states (within_bound gates the certified defect)");
  config.set("target",
             ">= 2x on at least one 2^16-state mixing or spectral "
             "workload; agrees gates CI at 1e-6");
  config.set("unit", "ms");
  Json measurements = Json::object();
  measurements.set("results", std::move(results));
  write_bench_document(path, "fast_apply_vs_scalar", std::move(config),
                       std::move(measurements));
  std::cout << "wrote " << path << "\n";
}

/// Least-squares slope of log(ms) against log(threads), negated: the
/// fitted strong-scaling exponent e in wall ~ threads^{-e} (1.0 = ideal
/// linear scaling, 0 = no scaling). Needs >= 2 distinct thread counts.
double fitted_scaling_exponent(const std::vector<size_t>& threads,
                               const std::vector<double>& wall_ms) {
  const size_t m = threads.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < m; ++i) {
    const double x = std::log(double(threads[i]));
    const double y = std::log(std::max(wall_ms[i], 1e-9));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = double(m) * sxx - sx * sx;
  if (denom <= 0) return 0.0;
  return -(double(m) * sxy - sx * sy) / denom;
}

/// Emit BENCH_scaling.json: strong-scaling sweeps of the pool-parallel
/// kernels across threads in {1, 2, 4, ...} (DESIGN.md §12). Every
/// (workload, threads) cell records wall_ms plus bit_identical against
/// the threads=1 output — the blocked-reduction determinism contract
/// (DESIGN.md §11) makes pool size invisible to results, and this is
/// where that claim is continuously measured. Per-workload summary rows
/// carry the fitted strong-scaling exponent (wall ~ threads^{-e}); CI
/// fails when an exponent drops > 20% against the baseline. On a 1-core
/// container the sweep still runs {1, 2} and the exponent hovers near 0,
/// which the gate's absolute floor ignores; multi-core runners record
/// the real curve.
void write_bench_scaling_json(const std::string& path, size_t max_threads) {
  if (max_threads == 0) {
    max_threads = std::max<size_t>(2, std::thread::hardware_concurrency());
  }
  std::vector<size_t> counts;
  for (size_t c = 1; c <= max_threads; c *= 2) counts.push_back(c);
  if (counts.back() != max_threads) counts.push_back(max_threads);

  // Each workload runs the kernel under one pool and returns an exact
  // floating-point signature of its output; bit-identity across pool
  // sizes is signature equality.
  struct Workload {
    std::string name;
    std::string game;
    size_t states;
    int reps;
    std::function<double(ThreadPool&, std::vector<double>&)> run;
  };
  std::vector<Workload> workloads;

  // Pool-parallel batched apply on the 2^16 Ising torus: the kernel
  // behind every operator-scale mixing and spectral run.
  const IsingGame ising(make_torus(4, 4), 0.5);
  const size_t n_ising = ising.space().num_profiles();
  const size_t apply_count = 4;
  std::vector<double> apply_xs(apply_count * n_ising);
  {
    Rng rng(17);
    for (double& v : apply_xs) v = rng.uniform();
  }
  workloads.push_back(
      {"logit_apply_many_x4", ising.name(), n_ising, 3,
       [&](ThreadPool& pool, std::vector<double>& sig) {
         const LogitOperator op(ising, 1.0, UpdateKind::kAsynchronous,
                                &pool);
         std::vector<double> ys(apply_count * n_ising);
         const double ms = time_best_of(3, [&] {
           op.apply_many(apply_xs, ys, apply_count);
           benchmark::DoNotOptimize(ys.data());
         });
         sig = std::move(ys);
         return ms;
       }});

  // Sharded CSR transition build on the 1024-state congestion instance.
  const CongestionGame congestion = make_congestion_bench(10);
  const TransitionBuilder builder(congestion, 1.0,
                                  UpdateKind::kAsynchronous);
  workloads.push_back(
      {"csr_build", congestion.name(), congestion.space().num_profiles(), 3,
       [&](ThreadPool& pool, std::vector<double>& sig) {
         CsrMatrix p;
         const double ms = time_best_of(3, [&] {
           p = builder.csr(pool);
           benchmark::DoNotOptimize(p.values().data());
         });
         sig.clear();
         sig.reserve(p.nnz() * 2 + p.rows() + 1);
         for (size_t r = 0; r <= p.rows(); ++r) {
           sig.push_back(double(p.row_offsets()[r]));
         }
         for (size_t k = 0; k < p.nnz(); ++k) {
           sig.push_back(double(p.col_indices()[k]));
           sig.push_back(p.values()[k]);
         }
         return ms;
       }});

  // Lanczos on the 2^16 operator: pool-parallel applies plus blocked
  // inner products — the reduction path the determinism contract covers.
  const GibbsMeasure ising_gibbs = gibbs_measure(ising, 1.0);
  workloads.push_back(
      {"lanczos_spectrum", ising.name(), n_ising, 2,
       [&](ThreadPool& pool, std::vector<double>& sig) {
         const LogitOperator op(ising, 1.0, UpdateKind::kAsynchronous,
                                &pool);
         LanczosOptions opts;
         opts.tol = 1e-8;
         opts.max_iterations = 60;
         opts.pool = &pool;
         LanczosSpectrum s;
         const double ms = time_best_of(2, [&] {
           s = lanczos_spectrum(op, ising_gibbs.probabilities, opts);
           benchmark::DoNotOptimize(s.lambda2);
         });
         sig = {s.lambda2, s.lambda_min, double(s.iterations)};
         return ms;
       }});

  Json results = Json::array();
  std::cout << "scaling sweep, threads in {";
  for (size_t i = 0; i < counts.size(); ++i) {
    std::cout << (i ? "," : "") << counts[i];
  }
  std::cout << "}:\n";
  for (Workload& w : workloads) {
    std::vector<double> walls;
    std::vector<double> ref_sig;
    bool all_identical = true;
    for (size_t i = 0; i < counts.size(); ++i) {
      ThreadPool pool(counts[i]);
      std::vector<double> sig;
      const double ms = w.run(pool, sig);
      walls.push_back(ms);
      bool identical = true;
      if (i == 0) {
        ref_sig = std::move(sig);
      } else {
        identical = sig == ref_sig;
        all_identical = all_identical && identical;
      }
      Json r = Json::object();
      r.set("workload", w.name);
      r.set("game", w.game);
      r.set("states", w.states);
      r.set("threads", counts[i]);
      r.set("wall_ms", ms);
      r.set("bit_identical", identical);
      results.push_back(std::move(r));
      std::cout << "  " << w.name << " threads=" << counts[i] << ": " << ms
                << " ms, bit_identical=" << identical << "\n";
    }
    const double exponent = fitted_scaling_exponent(counts, walls);
    Json r = Json::object();
    r.set("workload", w.name);
    r.set("game", w.game);
    r.set("states", w.states);
    r.set("scaling_exponent", exponent);
    r.set("bit_identical_all", all_identical);
    results.push_back(std::move(r));
    std::cout << "  " << w.name << " scaling_exponent=" << exponent
              << ", bit_identical_all=" << all_identical << "\n";
  }

  Json config = Json::object();
  config.set("description",
             "strong-scaling sweep of the pool-parallel kernels: wall_ms "
             "per (workload, threads) cell with bit-identity against the "
             "threads=1 output; summary rows carry the fitted scaling "
             "exponent (wall ~ threads^-e)");
  config.set("unit", "ms");
  config.set("max_threads", max_threads);
  config.set("hardware_concurrency",
             size_t(std::thread::hardware_concurrency()));
  Json measurements = Json::object();
  measurements.set("results", std::move(results));
  write_bench_document(path, "strong_scaling", std::move(config),
                       std::move(measurements));
  std::cout << "wrote " << path << "\n";
}

/// Emit BENCH_local.json: sampling-scale throughput of the src/local/
/// kernels (DESIGN.md §13) on a 512x512 graphical-coordination torus.
/// Rows: players/sec per (workload, threads) with bit-identity against
/// the threads=1 trajectory; summary rows carry the fitted scaling
/// exponent. "players/sec" counts revision opportunities: one per async
/// step, one per player per concurrent round.
void write_bench_local_json(const std::string& path) {
  const Graph graph = make_torus(512, 512);
  const local::LocalTopology topo(graph);
  const local::BinaryLocalRule rule =
      local::BinaryLocalRule::graphical_coordination(
          CoordinationPayoffs::from_deltas(2.0, 1.0));
  const size_t n = topo.num_vertices();
  const double beta = 1.0;
  const uint64_t master_seed = 20110604;
  const std::vector<size_t> counts = {1, 2, 4};

  struct Workload {
    std::string name;
    std::string kernel;
    double opportunities;  // per run, for players/sec
    // Returns wall ms; fills a trajectory signature for bit-identity.
    std::function<double(ThreadPool&, std::vector<double>&)> run;
  };
  std::vector<Workload> workloads;

  // Async fleet: 4 replicas, 2 sweeps each, parallel ACROSS replicas —
  // the async kernel itself is a single sequential stream.
  const uint32_t fleet_replicas = 4;
  const uint64_t fleet_steps = 2 * uint64_t(n);
  workloads.push_back(
      {"local_async_fleet", "async",
       double(fleet_replicas) * double(fleet_steps),
       [&](ThreadPool& pool, std::vector<double>& sig) {
         local::LocalDynamics dyn(&topo, &rule, beta, &pool);
         local::FleetOptions fopts;
         fopts.replicas = fleet_replicas;
         fopts.kernel = local::Kernel::kAsync;
         fopts.horizon = fleet_steps;
         fopts.cadence = fleet_steps;  // endpoints only
         const local::ReplicaFleet fleet(&dyn, fopts);
         local::FleetSummary summary;
         const double ms = time_best_of(2, [&] {
           summary = fleet.run(master_seed);
           benchmark::DoNotOptimize(summary.total_flips);
         });
         sig.clear();
         sig.push_back(double(summary.total_flips));
         for (double m : summary.final_magnetization) sig.push_back(m);
         for (double p : summary.phi_mean) sig.push_back(p);
         return ms;
       }});

  // Concurrent kernel: 8 rounds at p = 0.5 on one trajectory, sharded
  // over the pool — the §13 determinism contract under timing.
  const uint64_t rounds = 8;
  workloads.push_back(
      {"local_concurrent", "concurrent", double(rounds) * double(n),
       [&](ThreadPool& pool, std::vector<double>& sig) {
         local::LocalDynamics dyn(&topo, &rule, beta, &pool);
         local::LocalState state = dyn.make_state();
         uint64_t flips = 0;
         const double ms = time_best_of(2, [&] {
           Rng init(local::replica_seed(master_seed, 0));
           state.randomize(0.5, init);
           flips = dyn.run_concurrent(state, rounds, 0.5,
                                      local::replica_seed(master_seed, 0));
           benchmark::DoNotOptimize(flips);
         });
         const uint64_t hash = local::strategy_hash(state.strategies());
         sig = {double(flips), double(state.ones()),
                double(uint32_t(hash)), double(hash >> 32),
                state.potential(&pool)};
         return ms;
       }});

  Json results = Json::array();
  std::cout << "local kernels on torus(512x512), n=" << n << ":\n";
  for (Workload& w : workloads) {
    std::vector<double> walls;
    std::vector<double> ref_sig;
    bool all_identical = true;
    for (size_t i = 0; i < counts.size(); ++i) {
      ThreadPool pool(counts[i]);
      std::vector<double> sig;
      const double ms = w.run(pool, sig);
      walls.push_back(ms);
      bool identical = true;
      if (i == 0) {
        ref_sig = std::move(sig);
      } else {
        identical = sig == ref_sig;
        all_identical = all_identical && identical;
      }
      const double players_per_sec =
          ms > 0 ? w.opportunities / (ms / 1e3) : 0.0;
      Json r = Json::object();
      r.set("workload", w.name);
      r.set("game", "graphical-coordination");
      r.set("kernel", w.kernel);
      r.set("topology", "torus(512x512)");
      r.set("n", n);
      r.set("threads", counts[i]);
      r.set("wall_ms", ms);
      r.set("players_per_sec", players_per_sec);
      r.set("bit_identical", identical);
      results.push_back(std::move(r));
      std::cout << "  " << w.name << " threads=" << counts[i] << ": " << ms
                << " ms, " << players_per_sec << " players/s, bit_identical="
                << identical << "\n";
    }
    const double exponent = fitted_scaling_exponent(counts, walls);
    Json r = Json::object();
    r.set("workload", w.name);
    r.set("game", "graphical-coordination");
    r.set("kernel", w.kernel);
    r.set("topology", "torus(512x512)");
    r.set("n", n);
    r.set("scaling_exponent", exponent);
    r.set("bit_identical_all", all_identical);
    results.push_back(std::move(r));
    std::cout << "  " << w.name << " scaling_exponent=" << exponent
              << ", bit_identical_all=" << all_identical << "\n";
  }

  Json config = Json::object();
  config.set("description",
             "sampling-scale local-dynamics kernels (src/local): "
             "players/sec per (workload, threads) cell — one revision "
             "opportunity per async step, one per player per concurrent "
             "round — with bit-identity against the threads=1 trajectory "
             "and fitted scaling exponents (wall ~ threads^-e)");
  config.set("unit", "ms");
  config.set("beta", beta);
  config.set("revise_prob", 0.5);
  Json measurements = Json::object();
  measurements.set("results", std::move(results));
  write_bench_document(path, "local_dynamics", std::move(config),
                       std::move(measurements));
  std::cout << "wrote " << path << "\n";
}

/// Emit BENCH_service.json: requests/sec and p50/p99 latency of an
/// in-process logitdynd on a fixed 4-scenario explore mix (DESIGN.md
/// §15), for clients in {1,4} x threads in {1,2,4}, cold cache (fresh
/// daemon) vs warm cache (identical mix resubmitted). The warm pass is
/// the artifact cache's whole value proposition; the summary row's
/// warm_speedup_ok (min warm/cold requests-per-sec ratio >= 5) is what
/// CI gates on. A final journal on/off cold pass (DESIGN.md §16) bounds
/// the write-ahead journal's fsync cost: journal_overhead_ok gates
/// rps_on >= 0.85 * rps_off.
void write_bench_service_json(const std::string& path) {
  using service::Client;
  using service::Daemon;
  using service::ServiceRequest;

  const std::string socket =
      "/tmp/logitdynd_bench_" + std::to_string(::getpid()) + ".sock";

  // The fixed scenario mix: four dense-path explore runs (|S| <= 2^8 —
  // big enough that a cold request pays a real transition build + exact
  // spectrum + doubling ladder, small enough that the full cold pass
  // stays CI-sized), where a warm request reuses all three artifacts.
  std::vector<Json> mix;
  {
    scenario::ScenarioSpec ising;
    ising.family = "ising";
    ising.n = 8;
    mix.push_back(ising.to_json());
    scenario::ScenarioSpec coord;
    coord.family = "graphical_coordination";
    coord.n = 8;
    mix.push_back(coord.to_json());
    scenario::ScenarioSpec plateau;
    plateau.family = "plateau";
    plateau.n = 8;
    mix.push_back(plateau.to_json());
    scenario::ScenarioSpec dominant;
    dominant.family = "dominant";
    dominant.n = 6;
    mix.push_back(dominant.to_json());
  }
  Json request_options = Json::object();
  request_options.set("beta_grid", Json::array({Json(0.5), Json(1.0)}));

  const std::vector<int> client_counts = {1, 4};
  const std::vector<int> thread_counts = {1, 2, 4};
  Json results = Json::array();
  double min_speedup = 1e300;

  for (const int threads : thread_counts) {
    for (const int clients : client_counts) {
      Daemon::Config dc;
      dc.socket_path = socket;
      dc.engine.max_active = clients;
      dc.engine.default_threads = threads;
      // Throughput measurement, not streaming: no progress frames.
      dc.engine.heartbeat_stride = uint64_t(1) << 62;
      Daemon daemon(dc);
      std::thread server([&daemon] { daemon.run(); });
      // The listener may not be bound yet; connectability IS readiness.
      for (int spin = 0;; ++spin) {
        try {
          net::connect_unix(socket);
          break;
        } catch (const Error&) {
          if (spin > 500) throw;
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }

      // One pass = every client submits the whole mix (distinct request
      // ids, identical scenarios). Latency is submit -> final per
      // request; throughput is total requests over the pass wall time.
      const auto run_pass = [&](const char* cache_state) {
        std::vector<std::thread> workers;
        std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
        Timer wall;
        for (int c = 0; c < clients; ++c) {
          workers.emplace_back([&, c] {
            Client client(socket);
            for (size_t m = 0; m < mix.size(); ++m) {
              ServiceRequest req;
              req.id = std::string(cache_state) + "-c" +
                       std::to_string(c) + "-m" + std::to_string(m);
              req.experiment = "explore";
              req.scenario = mix[m];
              req.options = request_options;
              Timer t;
              const Json outcome = client.run(req);
              if (outcome.contains("error")) {
                throw Error("bench request failed: " +
                            outcome.at("error").as_string());
              }
              lat[size_t(c)].push_back(t.millis());
            }
          });
        }
        for (std::thread& w : workers) w.join();
        const double wall_ms = wall.millis();
        std::vector<double> all;
        for (const auto& per_client : lat) {
          all.insert(all.end(), per_client.begin(), per_client.end());
        }
        std::sort(all.begin(), all.end());
        struct Pass {
          double rps, p50_ms, p99_ms;
        };
        const auto pct = [&](double q) {
          const size_t idx = std::min(
              all.size() - 1, size_t(std::ceil(q * double(all.size()))) - 1);
          return all[idx];
        };
        return Pass{double(all.size()) / (wall_ms / 1000.0), pct(0.50),
                    pct(0.99)};
      };

      const auto cold = run_pass("cold");
      const auto warm = run_pass("warm");
      daemon.stop();
      server.join();

      for (const auto* pass : {&cold, &warm}) {
        Json r = Json::object();
        r.set("workload", "service_mix");
        r.set("clients", clients);
        r.set("threads", threads);
        r.set("cache_state", pass == &cold ? "cold" : "warm");
        r.set("requests", uint64_t(size_t(clients) * mix.size()));
        r.set("requests_per_sec", pass->rps);
        r.set("p50_ms", pass->p50_ms);
        r.set("p99_ms", pass->p99_ms);
        results.push_back(std::move(r));
      }
      const double speedup = warm.rps / cold.rps;
      min_speedup = std::min(min_speedup, speedup);
      Json r = Json::object();
      r.set("workload", "service_warm_speedup");
      r.set("clients", clients);
      r.set("threads", threads);
      r.set("warm_speedup", speedup);
      results.push_back(std::move(r));
      std::cout << "  service clients=" << clients << " threads=" << threads
                << ": cold " << cold.rps << " req/s (p99 " << cold.p99_ms
                << " ms), warm " << warm.rps << " req/s (p99 "
                << warm.p99_ms << " ms), speedup " << speedup << "x\n";
    }
  }

  // Journal overhead axis (DESIGN.md §16): one cold pass on a fresh
  // daemon with the write-ahead journal off vs on (fsync per lifecycle
  // transition), clients=1 / threads=2. Cold is the worst case — every
  // request pays its journal appends while doing real work exactly once
  // — so the gate bounds what durability costs anybody.
  const auto cold_rps_with_journal = [&](const std::string& journal_dir) {
    Daemon::Config dc;
    dc.socket_path = socket;
    dc.engine.max_active = 1;
    dc.engine.default_threads = 2;
    dc.engine.heartbeat_stride = uint64_t(1) << 62;
    dc.engine.journal_dir = journal_dir;
    Daemon daemon(dc);
    std::thread server([&daemon] { daemon.run(); });
    for (int spin = 0;; ++spin) {
      try {
        net::connect_unix(socket);
        break;
      } catch (const Error&) {
        if (spin > 500) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    Client client(socket);
    Timer wall;
    for (size_t m = 0; m < mix.size(); ++m) {
      ServiceRequest req;
      req.id = "journal-m" + std::to_string(m);
      req.experiment = "explore";
      req.scenario = mix[m];
      req.options = request_options;
      const Json outcome = client.run(req);
      if (outcome.contains("error")) {
        throw Error("bench request failed: " +
                    outcome.at("error").as_string());
      }
    }
    const double rps = double(mix.size()) / (wall.millis() / 1000.0);
    daemon.stop();
    server.join();
    return rps;
  };
  const std::string journal_dir = socket + ".journal";
  const double rps_journal_off = cold_rps_with_journal("");
  const double rps_journal_on = cold_rps_with_journal(journal_dir);
  if (DIR* d = ::opendir(journal_dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") {
        ::unlink((journal_dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
    ::rmdir(journal_dir.c_str());
  }
  for (const bool on : {false, true}) {
    Json r = Json::object();
    r.set("workload", "service_journal");
    r.set("clients", 1);
    r.set("threads", 2);
    r.set("cache_state", "cold");
    r.set("journal", on ? "on" : "off");
    r.set("requests", uint64_t(mix.size()));
    r.set("requests_per_sec", on ? rps_journal_on : rps_journal_off);
    results.push_back(std::move(r));
  }
  const double journal_cost = rps_journal_on / rps_journal_off;
  std::cout << "  service journal off " << rps_journal_off
            << " req/s, on " << rps_journal_on << " req/s (ratio "
            << journal_cost << ")\n";

  Json summary = Json::object();
  summary.set("workload", "service_summary");
  summary.set("min_warm_speedup", min_speedup);
  summary.set("warm_speedup_ok", min_speedup >= 5.0);
  summary.set("journal_rps_ratio", journal_cost);
  summary.set("journal_overhead_ok", journal_cost >= 0.85);
  results.push_back(std::move(summary));

  Json config = Json::object();
  config.set("description",
             "logitdynd daemon throughput on a fixed 4-scenario explore "
             "mix: requests/sec and p50/p99 submit-to-final latency per "
             "(clients, threads, cache_state); cold = fresh daemon, warm "
             "= identical mix resubmitted against the populated artifact "
             "cache. warm_speedup_ok gates min(warm/cold rps) >= 5; the "
             "service_journal rows compare a cold pass with the "
             "write-ahead journal off vs on and journal_overhead_ok "
             "gates rps_on >= 0.85 * rps_off");
  config.set("unit", "requests/sec, ms");
  config.set("experiment", "explore");
  config.set("mix_size", uint64_t(mix.size()));
  config.set("beta_grid", request_options.at("beta_grid"));
  Json measurements = Json::object();
  measurements.set("results", std::move(results));
  write_bench_document(path, "service_throughput", std::move(config),
                       std::move(measurements));
  std::cout << "wrote " << path << "\n";
}

DenseMatrix random_matrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n, n);
  for (double& v : m.data()) v = rng.uniform();
  return m;
}

void BM_DenseMatmul(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  const DenseMatrix a = random_matrix(n, 1);
  const DenseMatrix b = random_matrix(n, 2);
  DenseMatrix out(n, n);
  for (auto _ : state) {
    matmul(a, b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n * n * n));
}
BENCHMARK(BM_DenseMatmul)->Arg(64)->Arg(128)->Arg(256);

void BM_SymmetricEigen(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  DenseMatrix a = random_matrix(n, 3);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) a(i, j) = a(j, i);
  }
  for (auto _ : state) {
    SymmetricEigen eig = symmetric_eigen(a);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(64)->Arg(128)->Arg(256);

void BM_CsrLeftMultiply(benchmark::State& state) {
  // The logit chain of a ring coordination game: a realistic sparsity
  // pattern (n+1 nonzeros per row).
  const int n = int(state.range(0));
  GraphicalCoordinationGame game(make_ring(uint32_t(n)),
                                 CoordinationPayoffs::from_deltas(1.0, 1.0));
  LogitChain chain(game, 1.0);
  const CsrMatrix p = chain.csr_transition();
  std::vector<double> x(p.rows(), 1.0 / double(p.rows()));
  std::vector<double> y(p.rows());
  for (auto _ : state) {
    p.left_multiply(x, y);
    x.swap(y);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(p.nnz()));
}
BENCHMARK(BM_CsrLeftMultiply)->Arg(8)->Arg(12);

void BM_DenseTransitionBuild(benchmark::State& state) {
  const int n = int(state.range(0));
  PlateauGame game(n, double(n) / 2.0, 1.0);
  LogitChain chain(game, 1.0);
  for (auto _ : state) {
    DenseMatrix p = chain.dense_transition();
    benchmark::DoNotOptimize(p.data().data());
  }
}
BENCHMARK(BM_DenseTransitionBuild)->Arg(8)->Arg(10);

void BM_GibbsMeasure(benchmark::State& state) {
  const int n = int(state.range(0));
  PlateauGame game(n, double(n) / 2.0, 1.0);
  for (auto _ : state) {
    GibbsMeasure g = gibbs_measure(game, 1.5);
    benchmark::DoNotOptimize(g.probabilities.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) << n);
}
BENCHMARK(BM_GibbsMeasure)->Arg(10)->Arg(14);

void BM_SimulationSteps(benchmark::State& state) {
  // Raw logit-update throughput on a 48-player ring.
  GraphicalCoordinationGame game(make_ring(48),
                                 CoordinationPayoffs::from_deltas(1.0, 1.0));
  LogitChain chain(game, 1.0);
  Rng rng(5);
  Profile x(48, 0);
  for (auto _ : state) {
    chain.step(x, rng);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_SimulationSteps);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> weights(64);
  for (double& w : weights) w = rng.uniform() + 0.01;
  const AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.sample(rng));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_AliasSample);

void BM_DenseTransitionCongestionOracle(benchmark::State& state) {
  const CongestionGame game = make_congestion_bench(int(state.range(0)));
  const LogitChain chain(game, 1.0);
  for (auto _ : state) {
    DenseMatrix p = chain.dense_transition();
    benchmark::DoNotOptimize(p.data().data());
  }
}
BENCHMARK(BM_DenseTransitionCongestionOracle)->Arg(10)->Arg(11);

void BM_DenseTransitionCongestionNaive(benchmark::State& state) {
  const CongestionGame game = make_congestion_bench(int(state.range(0)));
  const NaiveRowGame naive(game);
  const LogitChain chain(naive, 1.0);
  for (auto _ : state) {
    DenseMatrix p = chain.dense_transition();
    benchmark::DoNotOptimize(p.data().data());
  }
}
BENCHMARK(BM_DenseTransitionCongestionNaive)->Arg(10)->Arg(11);

void BM_SimulationStepsCongestionOracle(benchmark::State& state) {
  const CongestionGame game =
      make_parallel_links_game(20, std::vector<double>(8, 1.0),
                               std::vector<double>(8, 0.5));
  const LogitChain chain(game, 1.0);
  Rng rng(5);
  Profile x(20, 0);
  std::vector<double> sigma(8);
  for (auto _ : state) {
    chain.step(x, rng, sigma);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_SimulationStepsCongestionOracle);

void BM_SimulationStepsCongestionNaive(benchmark::State& state) {
  const CongestionGame game =
      make_parallel_links_game(20, std::vector<double>(8, 1.0),
                               std::vector<double>(8, 0.5));
  const NaiveRowGame naive(game);
  const LogitChain chain(naive, 1.0);
  Rng rng(5);
  Profile x(20, 0);
  std::vector<double> sigma(8);
  for (auto _ : state) {
    chain.step(x, rng, sigma);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_SimulationStepsCongestionNaive);

}  // namespace

// Custom main: emit the oracle-vs-naive comparison first (the perf
// trajectory reads BENCH_oracle.json), then run the google-benchmark
// suite as usual. --bench_oracle_only keeps its historical behaviour
// (oracle JSON, then exit); --bench_smoke_only additionally emits
// BENCH_chain_build.json, BENCH_spectral.json, BENCH_apply.json,
// BENCH_scaling.json, BENCH_local.json and BENCH_service.json — those
// emitters are gated behind flags because their numbers only mean
// something in a Release build (the bench-perf CI job is their
// consumer); the --bench_*_only flags emit just one comparison.
int main(int argc, char** argv) {
  std::string json_path = "BENCH_oracle.json";
  std::string chain_build_path = "BENCH_chain_build.json";
  std::string spectral_path = "BENCH_spectral.json";
  std::string apply_path = "BENCH_apply.json";
  std::string scaling_path = "BENCH_scaling.json";
  std::string local_path = "BENCH_local.json";
  std::string service_path = "BENCH_service.json";
  bool exit_after_json = false;
  bool chain_build = false;
  bool spectral = false;
  bool apply = false;
  bool scaling = false;
  bool local_bench = false;
  bool service_bench = false;
  bool oracle = true;
  size_t scaling_max_threads = 0;  // 0 = max(2, hardware_concurrency)
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench_oracle_only") {
      exit_after_json = true;
    } else if (arg == "--bench_smoke_only") {
      exit_after_json = true;
      chain_build = true;
      spectral = true;
      apply = true;
      scaling = true;
      local_bench = true;
      service_bench = true;
    } else if (arg == "--bench_service_only") {
      // Daemon throughput alone: the service CI leg runs just this.
      exit_after_json = true;
      service_bench = true;
      oracle = false;
    } else if (arg.rfind("--bench_service_out=", 0) == 0) {
      service_path = arg.substr(std::string("--bench_service_out=").size());
    } else if (arg == "--bench_local_only") {
      // Sampling-scale local kernels alone (players/sec + bit-identity).
      exit_after_json = true;
      local_bench = true;
      oracle = false;
    } else if (arg.rfind("--bench_local_out=", 0) == 0) {
      local_path = arg.substr(std::string("--bench_local_out=").size());
    } else if (arg == "--bench_scaling_only") {
      // Scaling sweep alone: the threads-axis CI leg runs just this.
      exit_after_json = true;
      scaling = true;
      oracle = false;
    } else if (arg.rfind("--bench_scaling_max_threads=", 0) == 0) {
      scaling_max_threads = size_t(std::stoul(
          arg.substr(std::string("--bench_scaling_max_threads=").size())));
    } else if (arg.rfind("--bench_scaling_out=", 0) == 0) {
      scaling_path = arg.substr(std::string("--bench_scaling_out=").size());
    } else if (arg == "--bench_spectral_only") {
      // Spectral emitter alone (the dense rows take minutes; this flag
      // lets CI or a profiler run just them).
      exit_after_json = true;
      spectral = true;
      oracle = false;
    } else if (arg == "--bench_apply_only") {
      // Fast-apply emitter alone: the vectorized-vs-scalar gate.
      exit_after_json = true;
      apply = true;
      oracle = false;
    } else if (arg.rfind("--bench_oracle_out=", 0) == 0) {
      json_path = arg.substr(std::string("--bench_oracle_out=").size());
    } else if (arg.rfind("--bench_chain_build_out=", 0) == 0) {
      // Redirects the path only; the emitter itself stays gated behind
      // --bench_smoke_only (its numbers only mean something in Release).
      chain_build_path =
          arg.substr(std::string("--bench_chain_build_out=").size());
    } else if (arg.rfind("--bench_spectral_out=", 0) == 0) {
      spectral_path = arg.substr(std::string("--bench_spectral_out=").size());
    } else if (arg.rfind("--bench_apply_out=", 0) == 0) {
      apply_path = arg.substr(std::string("--bench_apply_out=").size());
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (oracle) write_bench_oracle_json(json_path);
  if (chain_build) write_bench_chain_build_json(chain_build_path);
  if (spectral) write_bench_spectral_json(spectral_path);
  if (apply) write_bench_apply_json(apply_path);
  if (scaling) write_bench_scaling_json(scaling_path, scaling_max_threads);
  if (local_bench) write_bench_local_json(local_path);
  if (service_bench) write_bench_service_json(service_path);
  if (exit_after_json) return 0;
  argc = int(passthrough.size());
  argv = passthrough.data();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
