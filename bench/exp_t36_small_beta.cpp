// Experiment E5 — Theorem 3.6 (small beta: fast mixing).
//
// claim: if beta <= c/(n * deltaPhi) with c < 1, then t_mix = O(n log n),
// with the path-coupling constant n(log n + log 1/eps)/(1-c).
// We compute exact worst-case mixing times of full chains at the largest
// admissible beta and print t_mix / (n log n), which must stay bounded.
#include <cmath>
#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/potential_stats.hpp"
#include "bench_common.hpp"
#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "games/plateau.hpp"
#include "games/random_potential.hpp"
#include "rng/rng.hpp"

using namespace logitdyn;

int main() {
  bench::print_header(
      "E5: small-beta regime (Theorem 3.6)",
      "claim: beta <= c/(n*deltaPhi), c = 1/2  =>  t_mix <= n(log n + "
      "log 4)/(1-c) = O(n log n)");

  const double c_const = 0.5;

  bench::print_section("plateau games at beta = c/(n*deltaPhi)");
  Table table({"n", "|S|", "beta", "t_mix", "n log n", "t_mix/(n log n)",
               "thm 3.6 bound", "holds"});
  for (int n : {4, 6, 8, 10}) {
    PlateauGame game(n, double(n) / 2.0, 1.0);
    const std::vector<double> phi = potential_table(game);
    const PotentialStats stats = potential_stats(game.space(), phi);
    const double beta = c_const / (double(n) * stats.local_variation);
    LogitChain chain(game, beta);
    const MixingResult mix = bench::exact_tmix(chain);
    const double nlogn = double(n) * std::log(double(n));
    const double bound = bounds::thm36_tmix_upper(n, c_const, 0.25);
    table.row()
        .cell(n)
        .cell(size_t(1) << n)
        .cell(beta, 4)
        .cell(bench::tmix_cell(mix))
        .cell(nlogn, 1)
        .cell(double(mix.time) / nlogn, 3)
        .cell(bound, 1)
        .cell(double(mix.time) <= bound ? "yes" : "NO");
  }
  table.print(std::cout);

  bench::print_section("random potential games (m = 2) at admissible beta");
  Rng rng(11);
  Table table2({"n", "deltaPhi", "beta", "t_mix", "thm 3.6 bound", "holds"});
  for (int n : {4, 6, 8}) {
    const TablePotentialGame game =
        make_random_potential_game(ProfileSpace(n, 2), 2.0, rng);
    const std::vector<double> phi(game.potential_table().begin(),
                                  game.potential_table().end());
    const PotentialStats stats = potential_stats(game.space(), phi);
    const double beta = c_const / (double(n) * stats.local_variation);
    LogitChain chain(game, beta);
    const MixingResult mix = bench::exact_tmix(chain);
    const double bound = bounds::thm36_tmix_upper(n, c_const, 0.25);
    table2.row()
        .cell(n)
        .cell(stats.local_variation, 3)
        .cell(beta, 4)
        .cell(bench::tmix_cell(mix))
        .cell(bound, 1)
        .cell(double(mix.time) <= bound ? "yes" : "NO");
  }
  table2.print(std::cout);

  bench::print_section(
      "contrast: same plateau game, beta just above the regime (10x)");
  Table table3({"n", "beta_small", "t_mix_small", "beta_large(10x)",
                "t_mix_large"});
  for (int n : {6, 8}) {
    PlateauGame game(n, double(n) / 2.0, 1.0);
    const std::vector<double> phi = potential_table(game);
    const PotentialStats stats = potential_stats(game.space(), phi);
    const double beta = c_const / (double(n) * stats.local_variation);
    // One chain for both regimes: set_beta replaces per-beta rebuilds.
    LogitChain chain(game, beta);
    const MixingResult small = bench::exact_tmix(chain);
    chain.set_beta(10.0 * beta);
    const MixingResult large = bench::exact_tmix(chain);
    table3.row()
        .cell(n)
        .cell(beta, 4)
        .cell(bench::tmix_cell(small))
        .cell(10.0 * beta, 4)
        .cell(bench::tmix_cell(large));
  }
  table3.print(std::cout);
  return 0;
}
