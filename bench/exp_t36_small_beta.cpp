// Thin shim: this experiment lives in the registry
// (src/scenario/experiments/t36_small_beta.cpp). Run it with default scenario
// and options — `logitdyn_lab run t36_small_beta` is the full-featured front
// end (scenario overrides, beta grids, seeds, JSON reports).
#include "scenario/registry.hpp"

int main() { return logitdyn::scenario::run_registered_main("t36_small_beta"); }
