// Thin shim: this experiment lives in the registry
// (src/scenario/experiments/t56_ring.cpp). Run it with default scenario
// and options — `logitdyn_lab run t56_ring` is the full-featured front
// end (scenario overrides, beta grids, seeds, JSON reports).
#include "scenario/registry.hpp"

int main() { return logitdyn::scenario::run_registered_main("t56_ring"); }
