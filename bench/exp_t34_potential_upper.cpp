// Experiment E3 — Theorem 3.4 (upper bound for all beta, potential games).
//
// claim: t_mix(eps) <= 2mn e^{beta DeltaPhi}(log 1/eps + beta DeltaPhi +
// n log m). We compute the exact worst-case t_mix of the full chain and
// print it against the bound; the bound must dominate at every beta, and
// its exponential rate (DeltaPhi) must upper-bound the measured rate.
#include <algorithm>
#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/potential_stats.hpp"
#include "bench_common.hpp"
#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "core/logit_operator.hpp"
#include "games/plateau.hpp"
#include "games/random_potential.hpp"
#include "linalg/lanczos.hpp"
#include "rng/rng.hpp"

using namespace logitdyn;

int main() {
  bench::print_header(
      "E3: mixing time vs the Theorem 3.4 upper bound",
      "claim: t_mix <= 2mn e^{beta*DPhi}(log 4 + beta*DPhi + n log m) for "
      "every potential game and every beta");

  {
    bench::print_section("plateau game, n = 6, g = 3, l = 1 (64 states)");
    PlateauGame game(6, 3.0, 1.0);
    Table table({"beta", "t_mix (exact)", "thm 3.4 bound", "bound/t_mix"});
    std::vector<double> betas, times;
    // One chain across the whole sweep: beta is mutable on Dynamics.
    LogitChain chain(game, 0.0);
    for (double beta : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
      chain.set_beta(beta);
      const MixingResult mix = bench::exact_tmix(chain);
      const double bound = bounds::thm34_tmix_upper(6, 2, beta, 3.0, 0.25);
      table.row()
          .cell(beta, 2)
          .cell(bench::tmix_cell(mix))
          .cell_sci(bound)
          .cell(mix.converged ? bound / double(mix.time) : 0.0, 1);
      if (mix.converged && beta >= 1.0) {
        betas.push_back(beta);
        times.push_back(double(mix.time));
      }
    }
    table.print(std::cout);
    const LineFit fit = bench::rate_fit(betas, times);
    std::cout << "measured exp. rate of t_mix in beta: " << format_double(fit.slope, 3)
              << "  (bound rate = DeltaPhi = 3.0; measured must be <=)\n";
  }

  {
    bench::print_section("random potential games, n = 3, m = 3 (27 states)");
    Rng rng(7);
    Table table({"trial", "DeltaPhi", "beta", "t_mix", "thm 3.4 bound",
                 "holds"});
    for (int trial = 0; trial < 4; ++trial) {
      const TablePotentialGame game =
          make_random_potential_game(ProfileSpace(3, 3), 1.5, rng);
      const std::vector<double> phi = potential_table(game);
      const PotentialStats stats = potential_stats(game.space(), phi);
      LogitChain chain(game, 0.0);
      for (double beta : {0.5, 1.5, 3.0}) {
        chain.set_beta(beta);
        const MixingResult mix = bench::exact_tmix(chain);
        const double bound = bounds::thm34_tmix_upper(
            3, 3, beta, stats.global_variation, 0.25);
        table.row()
            .cell(trial)
            .cell(stats.global_variation, 3)
            .cell(beta, 2)
            .cell(bench::tmix_cell(mix))
            .cell_sci(bound)
            .cell(!mix.converged || double(mix.time) <= bound ? "yes" : "NO");
      }
    }
    table.print(std::cout);
  }

  {
    bench::print_section(
        "operator scale: plateau n = 14 (16384 states) — Theorem 2.3 "
        "bracket from Lanczos t_rel, single-start evolution inside it");
    // Above the dense cutover the exact doubling ladder is out of reach;
    // the operator path brackets t_mix by Theorem 2.3 (t_rel from Lanczos
    // on the matrix-free kernel) and lower-bounds it with batched
    // multi-start TV evolution — the bracket and the Theorem 3.4 bound
    // must both contain/dominate the evolved times.
    PlateauGame game(14, 7.0, 1.0);
    LogitChain chain(game, 0.0);
    Table table({"beta", "t_rel (lanczos)", "thm 2.3 lower",
                 "t_mix from extremes", "thm 2.3 upper", "thm 3.4 bound"});
    for (double beta : {0.2, 0.4}) {
      chain.set_beta(beta);
      const std::vector<double> pi = chain.stationary();
      const LogitOperator op(game, beta, UpdateKind::kAsynchronous);
      LanczosOptions opts;
      opts.tol = 1e-10;
      const LanczosSpectrum lz = lanczos_spectrum(op, pi, opts);
      const double pi_min = *std::min_element(pi.begin(), pi.end());
      const Theorem23Bracket bracket =
          tmix_bracket_from_relaxation(lz.relaxation_time(), pi_min, 0.25);
      // The two potential wells: all-zeros and all-ones.
      const size_t starts[] = {0, game.space().num_profiles() - 1};
      const OperatorMixingResult mix =
          mixing_time_operator(op, pi, starts, 0.25, 1 << 18);
      const double bound =
          bounds::thm34_tmix_upper(14, 2, beta, 7.0, 0.25);
      // An unconverged Ritz estimate underestimates t_rel, which would
      // invalidate the bracket — flag it rather than print it bare.
      const std::string unconv = lz.converged ? "" : " (UNCONVERGED)";
      table.row()
          .cell(beta, 2)
          .cell(format_double(lz.relaxation_time(), 3) + unconv)
          .cell(format_double(bracket.lower, 1) + unconv)
          .cell(bench::tmix_cell(mix.worst))
          .cell(format_double(bracket.upper, 1) + unconv)
          .cell_sci(bound);
    }
    table.print(std::cout);
    std::cout << "extreme-state evolution lower-bounds worst-case t_mix; "
                 "Theorem 2.3's upper bracket and the Theorem 3.4 bound "
                 "dominate it.\n";
  }
  return 0;
}
