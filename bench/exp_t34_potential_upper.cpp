// Thin shim: this experiment lives in the registry
// (src/scenario/experiments/t34_potential_upper.cpp). Run it with default scenario
// and options — `logitdyn_lab run t34_potential_upper` is the full-featured front
// end (scenario overrides, beta grids, seeds, JSON reports).
#include "scenario/registry.hpp"

int main() { return logitdyn::scenario::run_registered_main("t34_potential_upper"); }
