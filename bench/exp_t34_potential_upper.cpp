// Experiment E3 — Theorem 3.4 (upper bound for all beta, potential games).
//
// claim: t_mix(eps) <= 2mn e^{beta DeltaPhi}(log 1/eps + beta DeltaPhi +
// n log m). We compute the exact worst-case t_mix of the full chain and
// print it against the bound; the bound must dominate at every beta, and
// its exponential rate (DeltaPhi) must upper-bound the measured rate.
#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/potential_stats.hpp"
#include "bench_common.hpp"
#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "games/plateau.hpp"
#include "games/random_potential.hpp"
#include "rng/rng.hpp"

using namespace logitdyn;

int main() {
  bench::print_header(
      "E3: mixing time vs the Theorem 3.4 upper bound",
      "claim: t_mix <= 2mn e^{beta*DPhi}(log 4 + beta*DPhi + n log m) for "
      "every potential game and every beta");

  {
    bench::print_section("plateau game, n = 6, g = 3, l = 1 (64 states)");
    PlateauGame game(6, 3.0, 1.0);
    Table table({"beta", "t_mix (exact)", "thm 3.4 bound", "bound/t_mix"});
    std::vector<double> betas, times;
    // One chain across the whole sweep: beta is mutable on Dynamics.
    LogitChain chain(game, 0.0);
    for (double beta : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
      chain.set_beta(beta);
      const MixingResult mix = bench::exact_tmix(chain);
      const double bound = bounds::thm34_tmix_upper(6, 2, beta, 3.0, 0.25);
      table.row()
          .cell(beta, 2)
          .cell(bench::tmix_cell(mix))
          .cell_sci(bound)
          .cell(mix.converged ? bound / double(mix.time) : 0.0, 1);
      if (mix.converged && beta >= 1.0) {
        betas.push_back(beta);
        times.push_back(double(mix.time));
      }
    }
    table.print(std::cout);
    const LineFit fit = bench::rate_fit(betas, times);
    std::cout << "measured exp. rate of t_mix in beta: " << format_double(fit.slope, 3)
              << "  (bound rate = DeltaPhi = 3.0; measured must be <=)\n";
  }

  {
    bench::print_section("random potential games, n = 3, m = 3 (27 states)");
    Rng rng(7);
    Table table({"trial", "DeltaPhi", "beta", "t_mix", "thm 3.4 bound",
                 "holds"});
    for (int trial = 0; trial < 4; ++trial) {
      const TablePotentialGame game =
          make_random_potential_game(ProfileSpace(3, 3), 1.5, rng);
      const std::vector<double> phi = potential_table(game);
      const PotentialStats stats = potential_stats(game.space(), phi);
      LogitChain chain(game, 0.0);
      for (double beta : {0.5, 1.5, 3.0}) {
        chain.set_beta(beta);
        const MixingResult mix = bench::exact_tmix(chain);
        const double bound = bounds::thm34_tmix_upper(
            3, 3, beta, stats.global_variation, 0.25);
        table.row()
            .cell(trial)
            .cell(stats.global_variation, 3)
            .cell(beta, 2)
            .cell(bench::tmix_cell(mix))
            .cell_sci(bound)
            .cell(!mix.converged || double(mix.time) <= bound ? "yes" : "NO");
      }
    }
    table.print(std::cout);
  }
  return 0;
}
