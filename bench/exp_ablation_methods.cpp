// Thin shim: this experiment lives in the registry
// (src/scenario/experiments/ablation_methods.cpp). Run it with default scenario
// and options — `logitdyn_lab run ablation_methods` is the full-featured front
// end (scenario overrides, beta grids, seeds, JSON reports).
#include "scenario/registry.hpp"

int main() { return logitdyn::scenario::run_registered_main("ablation_methods"); }
