// Extension experiment — the paper's conclusions raise the *synchronous*
// variant ("players are allowed to update their strategies
// simultaneously"; the beta = infinity case is Nisan–Schapira–Zohar's
// parallel best response). We compare the asynchronous chain against the
// synchronous one at matched work (one synchronous round = n player
// updates):
//   * stationary laws diverge (no Gibbs closed form — conclusions);
//   * synchronous coordination develops a near-period-2 flip-flop at
//     large beta, visible as round-2 return probabilities -> 1;
//   * mixing in *rounds* can beat mixing in *updates*/n at small beta but
//     collapses at large beta on coordination structures.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "analysis/mixing.hpp"
#include "analysis/tv.hpp"
#include "bench_common.hpp"
#include "core/chain.hpp"
#include "core/parallel_dynamics.hpp"
#include "games/coordination.hpp"
#include "games/graphical_coordination.hpp"
#include "games/plateau.hpp"
#include "graph/builders.hpp"

using namespace logitdyn;

int main() {
  bench::print_header(
      "EXT: synchronous (parallel) logit dynamics",
      "the future-work variant from the paper's conclusions, against the "
      "asynchronous chain");

  {
    bench::print_section(
        "stationary laws: TV(pi_sync, Gibbs) on coordination games");
    Table table({"game", "beta", "TV(pi_sync, pi_async)"});
    for (double beta : {0.5, 1.0, 2.0, 4.0}) {
      CoordinationGame game(CoordinationPayoffs::from_deltas(3.0, 1.0));
      ParallelLogitChain par(game, beta);
      LogitChain seq(game, beta);
      table.row()
          .cell("coordination-2x2")
          .cell(beta, 2)
          .cell(total_variation(par.stationary(), seq.stationary()), 4);
    }
    for (double beta : {0.5, 1.5}) {
      GraphicalCoordinationGame game(
          make_ring(5), CoordinationPayoffs::from_deltas(1.0, 1.0));
      ParallelLogitChain par(game, beta);
      LogitChain seq(game, beta);
      table.row()
          .cell("ring(5)")
          .cell(beta, 2)
          .cell(total_variation(par.stationary(), seq.stationary()), 4);
    }
    table.print(std::cout);
    std::cout << "nonzero TV at every beta: the synchronous chain does NOT "
                 "converge to the Gibbs measure (paper conclusions: no "
                 "simple closed form).\n";
  }

  {
    bench::print_section(
        "flip-flop onset: round-2 return probability from (0,1)");
    CoordinationGame game(CoordinationPayoffs::from_deltas(2.0, 2.0));
    const ProfileSpace& sp = game.space();
    const size_t s01 = sp.index({0, 1});
    Table table({"beta", "P^2((0,1) -> (0,1))", "P((0,1) -> (1,0))"});
    for (double beta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      ParallelLogitChain chain(game, beta);
      const DenseMatrix p = chain.dense_transition();
      const DenseMatrix p2 = matrix_power(p, 2);
      table.row()
          .cell(beta, 1)
          .cell(p2(s01, s01), 4)
          .cell(p(s01, sp.index({1, 0})), 4);
    }
    table.print(std::cout);
    std::cout << "simultaneous best responses chase each other: the "
                 "synchronous chain nearly 2-cycles at large beta.\n";
  }

  {
    bench::print_section(
        "matched-work mixing: async t_mix / n vs sync t_mix (rounds)");
    Table table({"game", "beta", "async t_mix/n", "sync t_mix (rounds)"});
    // Both chains built once; the beta sweep mutates them in place.
    PlateauGame game(6, 3.0, 1.0);
    LogitChain seq(game, 0.0);
    ParallelLogitChain par(game, 0.0);
    for (double beta : {0.5, 1.5, 2.5}) {
      seq.set_beta(beta);
      par.set_beta(beta);
      const MixingResult a = bench::exact_tmix(seq);
      const MixingResult b = mixing_time_doubling(par.dense_transition(),
                                                  par.stationary(), 0.25);
      table.row()
          .cell("plateau n=6 g=3")
          .cell(beta, 2)
          .cell(double(a.time) / 6.0, 2)
          .cell(bench::tmix_cell(b));
    }
    table.print(std::cout);
  }

  {
    bench::print_section(
        "CSR synchronous kernel: drop_tol sparsification at large beta");
    // The exact synchronous kernel has fully dense rows, which is why
    // this bench used to densify even on large spaces. At large beta
    // almost all of each row's mass sits on the per-player best
    // responses, so a drop tolerance makes the kernel genuinely sparse
    // with a quantified row-sum defect.
    PlateauGame game(10, 5.0, 1.0);  // 1024 states
    const size_t total = game.space().num_profiles();
    ParallelLogitChain chain(game, 0.0);
    Table table({"beta", "nnz (tol 1e-12)", "fill %", "max row-sum defect"});
    for (double beta : {0.5, 2.0, 8.0}) {
      chain.set_beta(beta);
      const CsrMatrix csr = chain.csr_transition(1e-12);
      double defect = 0.0;
      for (double s : csr.row_sums()) {
        defect = std::max(defect, std::abs(1.0 - s));
      }
      table.row()
          .cell(beta, 1)
          .cell(int64_t(csr.nnz()))
          .cell(100.0 * double(csr.nnz()) / double(total * total), 2)
          .cell_sci(defect);
    }
    table.print(std::cout);
    std::cout << "dropped mass stays below |S| * tol per row; the sparse "
                 "kernel feeds single-start distribution evolution far "
                 "beyond dense-matrix sizes.\n";
  }
  return 0;
}
