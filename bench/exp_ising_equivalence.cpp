// Experiment E11 — the paper's Glauber/logit dictionary (Sections 1, 5):
// Glauber dynamics on the zero-field ferromagnetic Ising model is exactly
// the logit dynamics of a graphical coordination game with
// delta0 = delta1 = 2J (no risk-dominant equilibrium).
//
// Series: max |P_ising - P_coordination| over all transitions, per
// topology and beta (must be ~1e-16); identical stationary measures; and
// matching magnetization statistics from simulation with shared seeds.
#include <cmath>
#include <iostream>

#include "analysis/tv.hpp"
#include "bench_common.hpp"
#include "core/chain.hpp"
#include "core/simulator.hpp"
#include "games/ising.hpp"
#include "graph/builders.hpp"

using namespace logitdyn;

int main() {
  bench::print_header(
      "E11: Glauber on Ising == logit on coordination games",
      "claim: transition matrices coincide exactly for delta0 = delta1 = 2J");

  {
    bench::print_section("transition-matrix equality");
    Table table({"graph", "J", "beta", "max|P_is - P_coord|",
                 "TV(pi_is, pi_coord)"});
    struct Case {
      const char* name;
      Graph graph;
    };
    const Case cases[] = {{"ring(6)", make_ring(6)},
                          {"path(6)", make_path(6)},
                          {"grid-2x3", make_grid(2, 3)},
                          {"clique(5)", make_clique(5)}};
    for (const Case& c : cases) {
      for (double beta : {0.4, 1.1}) {
        const double coupling = 0.8;
        IsingGame ising(c.graph, coupling);
        GraphicalCoordinationGame coord = ising.equivalent_coordination_game();
        LogitChain a(ising, beta);
        LogitChain b(coord, beta);
        const double dp =
            a.dense_transition().max_abs_diff(b.dense_transition());
        const double dpi = total_variation(a.stationary(), b.stationary());
        table.row()
            .cell(c.name)
            .cell(coupling, 2)
            .cell(beta, 2)
            .cell_sci(dp)
            .cell_sci(dpi);
      }
    }
    table.print(std::cout);
  }

  {
    bench::print_section(
        "simulation: shared seeds give identical magnetization traces");
    IsingGame ising(make_ring(32), 1.0);
    GraphicalCoordinationGame coord = ising.equivalent_coordination_game();
    Table table({"beta", "steps", "mean |m| (ising)", "mean |m| (coord)",
                 "identical trace"});
    for (double beta : {0.3, 0.8}) {
      LogitChain a(ising, beta);
      LogitChain b(coord, beta);
      Rng ra(4242), rb(4242);
      Profile xa(32, 0), xb(32, 0);
      double sum_a = 0.0, sum_b = 0.0;
      bool identical = true;
      const int64_t steps = 20000;
      for (int64_t t = 0; t < steps; ++t) {
        a.step(xa, ra);
        b.step(xb, rb);
        identical = identical && (xa == xb);
        sum_a += std::abs(ising.magnetization(xa)) / 32.0;
        sum_b += std::abs(ising.magnetization(xb)) / 32.0;
      }
      table.row()
          .cell(beta, 2)
          .cell(steps)
          .cell(sum_a / double(steps), 4)
          .cell(sum_b / double(steps), 4)
          .cell(identical ? "yes" : "NO");
    }
    table.print(std::cout);
    std::cout << "mean |magnetization| rises with beta: the ordered phase "
                 "of the equivalent ferromagnet.\n";
  }
  return 0;
}
