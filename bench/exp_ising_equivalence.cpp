// Thin shim: this experiment lives in the registry
// (src/scenario/experiments/ising_equivalence.cpp). Run it with default scenario
// and options — `logitdyn_lab run ising_equivalence` is the full-featured front
// end (scenario overrides, beta grids, seeds, JSON reports).
#include "scenario/registry.hpp"

int main() { return logitdyn::scenario::run_registered_main("ising_equivalence"); }
