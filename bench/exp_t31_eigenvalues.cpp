// Experiment E1/E2 — Theorem 3.1 and Lemma 3.2.
//
// T3.1: the transition matrix of the logit dynamics of any potential game
// has a non-negative spectrum, so lambda* = lambda_2 and
// t_rel = 1/(1 - lambda_2).
// L3.2: at beta = 0 the relaxation time is at most n (and equals n).
//
// Series reported: per (n, m, beta) random potential game — lambda_min,
// lambda_2, whether the T3.1 ordering lambda_2 >= |lambda_min| holds, and
// t_rel; then t_rel at beta = 0 against the Lemma 3.2 bound n.
#include <cmath>
#include <iostream>

#include "analysis/spectral.hpp"
#include "bench_common.hpp"
#include "core/chain.hpp"
#include "games/graphical_coordination.hpp"
#include "games/plateau.hpp"
#include "games/random_potential.hpp"
#include "graph/builders.hpp"
#include "rng/rng.hpp"

using namespace logitdyn;

int main() {
  bench::print_header(
      "E1: Spectrum of potential-game logit dynamics (Theorem 3.1)",
      "claim: all eigenvalues >= 0, hence lambda2 = lambda* and "
      "t_rel = 1/(1-lambda2)");

  Rng rng(20110604);  // SPAA'11 conference date as seed
  Table t31({"game", "n", "m", "beta", "lambda_min", "lambda_2",
             "spectrum>=0", "t_rel"});
  struct Case {
    int n, m;
    double beta;
  };
  const Case cases[] = {{2, 2, 0.5}, {2, 3, 1.0}, {3, 2, 2.0}, {3, 3, 1.0},
                        {4, 2, 1.5}, {2, 4, 3.0}, {5, 2, 0.7}, {4, 3, 0.4}};
  bool all_nonneg = true;
  for (const Case& c : cases) {
    const TablePotentialGame game =
        make_random_potential_game(ProfileSpace(c.n, c.m), 2.0, rng);
    LogitChain chain(game, c.beta);
    const ChainSpectrum s =
        chain_spectrum(chain.dense_transition(), chain.stationary());
    const bool nonneg = s.eigenvalues.front() >= -1e-9;
    all_nonneg = all_nonneg && nonneg;
    t31.row()
        .cell("random-potential")
        .cell(c.n)
        .cell(c.m)
        .cell(c.beta, 2)
        .cell(s.eigenvalues.front(), 6)
        .cell(s.lambda2(), 6)
        .cell(nonneg ? "yes" : "NO")
        .cell(s.relaxation_time(), 3);
  }
  // Structured games too.
  for (double beta : {0.5, 2.0}) {
    GraphicalCoordinationGame game(make_ring(5),
                                   CoordinationPayoffs::from_deltas(1.0, 1.0));
    LogitChain chain(game, beta);
    const ChainSpectrum s =
        chain_spectrum(chain.dense_transition(), chain.stationary());
    t31.row()
        .cell("ring-coordination")
        .cell(5)
        .cell(2)
        .cell(beta, 2)
        .cell(s.eigenvalues.front(), 6)
        .cell(s.lambda2(), 6)
        .cell(s.eigenvalues.front() >= -1e-9 ? "yes" : "NO")
        .cell(s.relaxation_time(), 3);
  }
  t31.print(std::cout);
  std::cout << "Theorem 3.1 verdict: "
            << (all_nonneg ? "all spectra non-negative (as predicted)"
                           : "VIOLATION FOUND")
            << "\n";

  bench::print_section(
      "E2: relaxation time at beta = 0 vs Lemma 3.2 bound (t_rel <= n)");
  Table t32({"game", "n", "t_rel(beta=0)", "bound n", "holds"});
  for (int n : {2, 3, 4, 5, 6, 7}) {
    const TablePotentialGame game =
        make_random_potential_game(ProfileSpace(n, 2), 3.0, rng);
    LogitChain chain(game, 0.0);
    const ChainSpectrum s =
        chain_spectrum(chain.dense_transition(), chain.stationary());
    t32.row()
        .cell("random-potential")
        .cell(n)
        .cell(s.relaxation_time(), 4)
        .cell(n)
        .cell(s.relaxation_time() <= n + 1e-6 ? "yes" : "NO");
  }
  t32.print(std::cout);

  bench::print_section(
      "E1c: Theorem 3.1 at operator scale — Lanczos on the matrix-free "
      "LogitOperator (no materialized P)");
  // n = 10 sits below the dense cutover so both paths run and must agree
  // on lambda_2 to 1e-8; n = 14 (16384 states) is operator-only.
  Table t31c({"n", "states", "via", "lambda_min", "lambda_2", "t_rel",
              "iters", "|d lambda_2| vs dense"});
  bool op_nonneg = true;
  for (int n : {10, 14}) {
    const TablePotentialGame game =
        make_random_potential_game(ProfileSpace(n, 2), 2.0, rng);
    LogitChain chain(game, 1.0);
    const std::vector<double> pi = chain.stationary();
    SpectralOptions force_op;
    force_op.dense_cutover = 1;  // always exercise the operator path here
    force_op.lanczos.tol = 1e-10;
    const SpectralSummary op_sum = spectral_summary(
        game, 1.0, UpdateKind::kAsynchronous, pi, force_op);
    std::string agree = "n/a (operator only)";
    if (game.space().num_profiles() < kDenseSpectralCutover) {
      const ChainSpectrum dense =
          chain_spectrum(chain.dense_transition(), pi);
      agree = format_double(std::abs(dense.lambda2() - op_sum.lambda2), 12);
    }
    t31c.row()
        .cell(n)
        .cell(int64_t(game.space().num_profiles()))
        .cell(op_sum.via_operator ? "lanczos" : "dense")
        .cell(op_sum.lambda_min, 8)
        .cell(op_sum.lambda2, 8)
        .cell(op_sum.relaxation_time(), 3)
        .cell(int64_t(op_sum.lanczos_iterations))
        .cell(agree);
    op_nonneg = op_nonneg && op_sum.lambda_min >= -1e-8;
  }
  t31c.print(std::cout);
  std::cout << "operator-path verdict: "
            << (op_nonneg ? "spectra non-negative at every size"
                          : "VIOLATION FOUND")
            << "\n";
  return 0;
}
