// Experiment E4 — Theorem 3.5 (exponential lower-bound family).
//
// The plateau potential Phi_n(x) = -l * min{c, |c - w(x)|} forces
// t_mix >= e^{beta*DeltaPhi(1-o(1))}: the Gibbs measure splits between the
// all-zeros well and the high-weight cap across a barrier of height
// DeltaPhi = g. We measure the exact mixing time of the weight-lumped
// chain across beta (a lower bound on the full chain's t_mix), fit the
// exponential rate, and compare with g; the closed-form Theorem 2.7
// bottleneck bound is printed alongside. A full-chain cross-check at
// small n validates the lumped numbers.
#include <cmath>
#include <iostream>

#include "analysis/bottleneck.hpp"
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "core/chain.hpp"
#include "core/lumped.hpp"
#include "games/plateau.hpp"

using namespace logitdyn;

int main() {
  bench::print_header(
      "E4: the Theorem 3.5 lower-bound family (plateau potentials)",
      "claim: t_mix >= e^{beta*g*(1-o(1))} — exponential in beta and in "
      "the global variation g");

  {
    bench::print_section(
        "exact t_mix of the weight-lumped chain, n = 32, g = 8, l = 2");
    const int n = 32;
    const double g = 8.0, l = 2.0;
    PlateauGame game(n, g, l);
    std::vector<double> wphi(size_t(n) + 1);
    for (int k = 0; k <= n; ++k) wphi[size_t(k)] = game.potential_of_weight(k);
    Table table({"beta", "t_mix (lumped, exact)", "thm 2.7 bottleneck LB",
                 "thm 3.5 closed form"});
    std::vector<double> betas, times;
    for (double beta :
         {0.5, 1.0, 1.5, 2.0, 2.25, 2.5, 2.75, 3.0, 3.25}) {
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const MixingResult mix = bench::exact_tmix(bd);
      // Bottleneck set R = {w < c} on the lumped chain (same mass and flow
      // as the paper's full-chain set).
      const DenseMatrix p = bd.transition();
      const std::vector<double> pi = bd.stationary();
      std::vector<uint8_t> in_set(pi.size(), 0);
      for (int k = 0; k < game.barrier_weight(); ++k) in_set[size_t(k)] = 1;
      const double b = bottleneck_ratio(p, pi, in_set);
      table.row()
          .cell(beta, 2)
          .cell(bench::tmix_cell(mix))
          .cell_sci(tmix_lower_from_bottleneck(b, 0.25))
          .cell_sci(bounds::thm35_tmix_lower(n, g, l, beta, 0.25));
      if (mix.converged && beta >= 2.25) {
        betas.push_back(beta);
        times.push_back(double(mix.time));
      }
    }
    table.print(std::cout);
    const LineFit fit = bench::rate_fit(betas, times);
    std::cout << "fitted exponential rate (beta >= 2.25): "
              << format_double(fit.slope, 3)
              << "  (paper predicts -> DeltaPhi = g = " << g
              << " as beta grows; the gap is the paper's own o(1) — the "
                 "entropy term (DPhi/dPhi) log n; r^2 = "
              << format_double(fit.r2, 4) << ")\n";
  }

  {
    bench::print_section("full-chain cross-check, n = 8, g = 4, l = 2");
    const int n = 8;
    PlateauGame game(n, 4.0, 2.0);
    std::vector<double> wphi(size_t(n) + 1);
    for (int k = 0; k <= n; ++k) wphi[size_t(k)] = game.potential_of_weight(k);
    Table table({"beta", "t_mix full (256 states)", "t_mix lumped",
                 "lumped<=full"});
    for (double beta : {0.5, 1.0, 1.5, 2.0}) {
      LogitChain chain(game, beta);
      const MixingResult full = bench::exact_tmix(chain);
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const MixingResult lump = bench::exact_tmix(bd);
      table.row()
          .cell(beta, 2)
          .cell(bench::tmix_cell(full))
          .cell(bench::tmix_cell(lump))
          .cell(lump.time <= full.time ? "yes" : "NO");
    }
    table.print(std::cout);
  }

  {
    bench::print_section("growth in g at fixed beta = 1.5 (lumped, n = 32)");
    Table table({"g", "l", "t_mix (exact)", "e^{beta*g}"});
    const int n = 32;
    const double beta = 1.5;
    for (double g : {2.0, 4.0, 6.0, 8.0}) {
      PlateauGame game(n, g, 2.0);
      std::vector<double> wphi(size_t(n) + 1);
      for (int k = 0; k <= n; ++k) {
        wphi[size_t(k)] = game.potential_of_weight(k);
      }
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const MixingResult mix = bench::exact_tmix(bd);
      table.row()
          .cell(g, 1)
          .cell(2.0, 1)
          .cell(bench::tmix_cell(mix))
          .cell_sci(std::exp(beta * g));
    }
    table.print(std::cout);
  }
  return 0;
}
