// Experiment E6 — Theorems 3.8/3.9: for large beta, t_mix = e^{beta*zeta
// (1 +- o(1))} where zeta is the min-max potential climb — NOT the global
// variation DeltaPhi.
//
// Workload: asymmetric clique coordination games (delta0 > delta1), where
// zeta = Phi_max - Phi(all-ones) is strictly smaller than DeltaPhi =
// Phi_max - Phi(all-zeros). The fitted exponential rate of the exact
// (lumped) mixing time must track zeta, separating the two predictions.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/zeta.hpp"
#include "bench_common.hpp"
#include "core/chain.hpp"
#include "core/gibbs.hpp"
#include "core/lumped.hpp"
#include "games/graphical_coordination.hpp"
#include "graph/builders.hpp"

using namespace logitdyn;

int main() {
  bench::print_header(
      "E6: zeta (not DeltaPhi) governs large-beta mixing (Thms 3.8/3.9)",
      "claim: log t_mix / beta -> zeta = min-max potential climb");

  {
    bench::print_section(
        "asymmetric clique n = 12, delta0 = 0.5, delta1 = 0.25 (lumped)");
    const int n = 12;
    const double d0 = 0.5, d1 = 0.25;
    const std::vector<double> wphi = clique_weight_potential(n, d0, d1);
    const double zeta = max_climb_on_path(wphi);
    const double dphi =
        *std::max_element(wphi.begin(), wphi.end()) -
        *std::min_element(wphi.begin(), wphi.end());
    std::cout << "zeta = " << format_double(zeta, 3)
              << "   DeltaPhi = " << format_double(dphi, 3) << "\n";
    Table table({"beta", "t_mix (exact)", "e^{beta*zeta}", "e^{beta*DPhi}"});
    std::vector<double> betas, times;
    for (double beta : {1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
      const BirthDeathChain bd = BirthDeathChain::weight_chain(n, beta, wphi);
      const MixingResult mix = bench::exact_tmix(bd);
      table.row()
          .cell(beta, 2)
          .cell(bench::tmix_cell(mix))
          .cell_sci(std::exp(beta * zeta))
          .cell_sci(std::exp(beta * dphi));
      if (mix.converged && beta >= 2.0) {
        betas.push_back(beta);
        times.push_back(double(mix.time));
      }
    }
    table.print(std::cout);
    const LineFit fit = bench::rate_fit(betas, times);
    std::cout << "fitted rate = " << format_double(fit.slope, 3)
              << "   zeta = " << format_double(zeta, 3)
              << "   DeltaPhi = " << format_double(dphi, 3)
              << "   (the fit must sit near zeta, far below DeltaPhi)\n";
  }

  {
    bench::print_section(
        "full-chain zeta via union-find matches lumped path formula (n=6)");
    const int n = 6;
    const double d0 = 0.5, d1 = 0.25;
    GraphicalCoordinationGame game(make_clique(uint32_t(n)),
                                   CoordinationPayoffs::from_deltas(d0, d1));
    const std::vector<double> phi = potential_table(game);
    const double zeta_full = max_potential_climb(game.space(), phi);
    const double zeta_lumped =
        max_climb_on_path(clique_weight_potential(n, d0, d1));
    Table table({"method", "zeta"});
    table.row().cell("union-find on 2^6 profiles").cell(zeta_full, 6);
    table.row().cell("1-D weight potential").cell(zeta_lumped, 6);
    table.print(std::cout);
  }

  {
    bench::print_section(
        "Theorem 3.8 upper / 3.9 lower bracket the exact t_mix (full chain, "
        "n = 5)");
    const int n = 5;
    const double d0 = 1.0, d1 = 0.5;
    GraphicalCoordinationGame game(make_clique(uint32_t(n)),
                                   CoordinationPayoffs::from_deltas(d0, d1));
    const std::vector<double> phi = potential_table(game);
    const double zeta = max_potential_climb(game.space(), phi);
    Table table({"beta", "t_mix", "thm 3.9 lower (|dR|=1)", "thm 3.8 upper"});
    for (double beta : {1.0, 2.0, 3.0}) {
      LogitChain chain(game, beta);
      const std::vector<double> pi = chain.stationary();
      const MixingResult mix = bench::exact_tmix(chain);
      const double pi_min = *std::min_element(pi.begin(), pi.end());
      table.row()
          .cell(beta, 2)
          .cell(bench::tmix_cell(mix))
          .cell_sci(bounds::thm39_tmix_lower(2, double(n), beta, zeta))
          .cell_sci(bounds::thm38_tmix_upper(n, 2, beta, zeta, pi_min));
    }
    table.print(std::cout);
    std::cout << "zeta = " << format_double(zeta, 3) << "\n";
  }
  return 0;
}
